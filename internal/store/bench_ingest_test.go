package store

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"msgscope/internal/platform"
	"msgscope/internal/prof"
)

// Ingest benchmarks for the hot record families. Each benchmark generates
// records with a deterministic, paper-shaped vocabulary (bounded user,
// group, and language pools; ~90-byte tweet texts) and reports two custom
// metrics alongside ns/op:
//
//	ns/rec    — ingest cost per record (generation included; it is the
//	            same cheap PCG arithmetic in every layout, so layout
//	            changes dominate the diff)
//	liveB/rec — live heap bytes per record retained by the store after a
//	            GC, i.e. the resident cost of the layout. Record
//	            generation is transient (one reused batch), so string
//	            data survives the GC only if the store keeps it alive.
//
// `make bench-compare` gates liveB/rec like any other metric: a >20%
// regression in bytes/record fails CI the same way ns/op growth does.
//
// MSGSCOPE_BENCH_SCALE multiplies the record counts (default 1.0 =
// 100K tweets / 200K messages; the bench-scale target runs 10x = 1M
// tweets at -benchtime=1x).

// benchScale reads the scale multiplier for the ingest benchmarks.
func benchScale() float64 {
	s := os.Getenv("MSGSCOPE_BENCH_SCALE")
	if s == "" {
		return 1.0
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 1.0
	}
	return v
}

// benchSweeps reads the monitoring horizon for the groups benchmark
// (default: the paper's 38 daily sweeps). MSGSCOPE_BENCH_SWEEPS stretches
// it for the observation-heavy bench-scale smoke, standing in for the
// multi-year collection horizons of TeleScope-style longitudinal studies.
func benchSweeps() int {
	s := os.Getenv("MSGSCOPE_BENCH_SWEEPS")
	if s == "" {
		return 38
	}
	v, err := strconv.Atoi(s)
	if err != nil || v <= 0 {
		return 38
	}
	return v
}

// benchPCG is a tiny deterministic generator so record synthesis costs the
// same few ns in every layout under test.
type benchPCG uint64

func (p *benchPCG) next() uint64 {
	*p = *p*6364136223846793005 + 1442695040888963407
	return uint64(*p >> 17)
}

func (p *benchPCG) intn(n int) int { return int(p.next() % uint64(n)) }

var benchLangs = []string{"en", "es", "pt", "hi", "id", "ar", "tr", "fr", "de", "und"}

// benchText fills buf with a deterministic ~90-byte pseudo-tweet.
func benchText(buf []byte, rng *benchPCG) []byte {
	buf = buf[:0]
	for w, n := 0, 12+rng.intn(6); w < n; w++ {
		if w > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, "word"...)
		buf = strconv.AppendUint(buf, rng.next()%5000, 10)
	}
	return buf
}

// fillTweetBatch regenerates batch[:n] in place, reusing backing storage
// where it can. Strings still allocate per record — exactly like the
// collector's decode path — which is what makes the live-bytes metric
// honest: layouts that alias input strings keep them alive, layouts that
// copy into arenas drop them.
// The pools scale with the corpus so the vocabulary keeps the paper's
// shape at every -scale: ~n/6 distinct tweeting users and ~n/5 distinct
// platform-scoped groups (2.2M tweets carried ~450K distinct URLs), and
// for messages ~n/100 groups (8.3M messages from ~5K joined groups).
func poolFor(n, div int) int {
	if p := n / div; p > 64 {
		return p
	}
	return 64
}

func fillTweetBatch(batch []TweetIngest, rng *benchPCG, base time.Time, startID uint64, n int, textBuf []byte) []byte {
	userPool, groupPool := poolFor(n, 6), poolFor(n, 15)
	for i := range batch {
		textBuf = benchText(textBuf, rng)
		batch[i] = TweetIngest{Tweet: TweetRecord{
			ID:        startID + uint64(i),
			UserID:    "u" + strconv.Itoa(rng.intn(userPool)),
			CreatedAt: base.Add(time.Duration(startID+uint64(i)) * time.Second),
			Lang:      benchLangs[rng.intn(len(benchLangs))],
			Hashtags:  rng.intn(3),
			Mentions:  rng.intn(4),
			Retweet:   rng.intn(2) == 0,
			Text:      string(textBuf),
			Platform:  platform.Platform(rng.intn(3) + 1),
			GroupCode: "grp" + strconv.Itoa(rng.intn(groupPool)),
			Source:    SourceSearch,
		}}
	}
	return textBuf
}

func fillMessageBatch(batch []MessageRecord, rng *benchPCG, base time.Time, start uint64, n int) {
	groupPool, authorPool := poolFor(n, 300), poolFor(n, 7)
	for i := range batch {
		batch[i] = MessageRecord{
			Platform:  platform.Platform(rng.intn(3) + 1),
			GroupCode: "grp" + strconv.Itoa(rng.intn(groupPool)),
			AuthorKey: uint64(rng.intn(authorPool)),
			SentAt:    base.Add(time.Duration(start+uint64(i)) * time.Second),
			Type:      platform.MessageType(rng.intn(6)),
		}
	}
}

func fillUserBatch(batch []UserRecord, rng *benchPCG, n int) {
	countries := []string{"BR", "NG", "ID", "IN", "SA", "MX", "AR", "US"}
	keyPool := poolFor(n, 1)
	for i := range batch {
		batch[i] = UserRecord{
			Platform:  platform.Platform(rng.intn(3) + 1),
			Key:       uint64(rng.intn(keyPool) + 1),
			PhoneHash: HashPhone("+55" + strconv.Itoa(rng.intn(keyPool))),
			Country:   countries[rng.intn(len(countries))],
		}
	}
}

// liveBytes returns the live heap delta attributable to build(), which
// must return the object to keep alive.
func liveBytes(build func() any) (any, uint64) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	obj := build()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc < before.HeapAlloc {
		return obj, 0
	}
	return obj, after.HeapAlloc - before.HeapAlloc
}

const ingestBatchSize = 1024

func BenchmarkStoreIngest(b *testing.B) {
	base := time.Date(2020, 4, 8, 0, 0, 0, 0, time.UTC)
	scale := benchScale()

	b.Run("tweets", func(b *testing.B) {
		n := int(100_000 * scale)
		batch := make([]TweetIngest, ingestBatchSize)
		var textBuf []byte
		buildStore := func() any {
			s := New()
			rng := benchPCG(42)
			for done := 0; done < n; done += len(batch) {
				if rem := n - done; rem < len(batch) {
					batch = batch[:rem]
				}
				textBuf = fillTweetBatch(batch, &rng, base, uint64(done+1), n, textBuf)
				s.AddTweetBatch(batch)
			}
			return s
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = buildStore()
		}
		b.StopTimer()
		obj, bytes := liveBytes(buildStore)
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/rec")
		b.ReportMetric(float64(bytes)/float64(n), "liveB/rec")
		runtime.KeepAlive(obj)
	})

	b.Run("messages", func(b *testing.B) {
		n := int(200_000 * scale)
		batch := make([]MessageRecord, ingestBatchSize)
		buildStore := func() any {
			s := New()
			rng := benchPCG(43)
			for done := 0; done < n; done += len(batch) {
				if rem := n - done; rem < len(batch) {
					batch = batch[:rem]
				}
				fillMessageBatch(batch, &rng, base, uint64(done), n)
				s.AddMessageBatch(batch)
			}
			return s
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = buildStore()
		}
		b.StopTimer()
		obj, bytes := liveBytes(buildStore)
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/rec")
		b.ReportMetric(float64(bytes)/float64(n), "liveB/rec")
		runtime.KeepAlive(obj)
	})

	// groups+observations: n discovered groups monitored over benchSweeps
	// daily probes. The generator mirrors the paper's lifecycle shape:
	// every group gets a stable title, ~40% die partway through the window
	// (one revoked probe, then monitoring stops), WhatsApp landing pages
	// leak a creator phone hash + country each probe, Discord invites carry
	// the inviter key and snowflake creation date, and ~2% of groups are
	// joined. Records = groups + observations appended.
	b.Run("groups", func(b *testing.B) {
		n := int(20_000 * scale)
		sweeps := benchSweeps()
		nRecs := 0
		buildStore := func() any {
			s := New()
			rng := benchPCG(45)
			nRecs = 0
			base2 := base
			type meta struct {
				p        platform.Platform
				code     string
				lifespan int
				phoneH   string
				country  string
			}
			gs := make([]meta, n)
			countries := []string{"BR", "NG", "ID", "IN", "SA", "MX", "AR", "US"}
			for i := range gs {
				p := platform.Platform(rng.intn(3) + 1)
				code := "grp" + strconv.Itoa(i)
				lifespan := sweeps
				if rng.intn(100) < 40 {
					lifespan = rng.intn(sweeps)
				}
				gs[i] = meta{p: p, code: code, lifespan: lifespan,
					country: countries[rng.intn(len(countries))]}
				if p == platform.WhatsApp {
					gs[i].phoneH = HashPhone("+55" + strconv.Itoa(i))
				}
				s.groups.put(&GroupRecord{
					Platform:    p,
					Code:        code,
					Canonical:   "https://chat.example/invite/" + code,
					FirstSeen:   base2,
					LastSeen:    base2,
					Tweets:      1 + rng.intn(5),
					SeenTwitter: true,
				})
				nRecs++
				if rng.intn(50) == 0 {
					s.MarkJoined(p, code, func(g *GroupRecord) {
						g.JoinedAt = base2.Add(24 * time.Hour)
						g.CreatedAt = base2.Add(-240 * time.Hour)
						g.MemberCount = 20 + rng.intn(200)
						g.Channels = 1
					})
				}
			}
			for sweep := 0; sweep < sweeps; sweep++ {
				at := base2.Add(time.Duration(sweep*24) * time.Hour)
				for i := range gs {
					g := &gs[i]
					if sweep > g.lifespan {
						continue // observed revoked; monitoring stopped
					}
					o := Observation{At: at, Alive: sweep < g.lifespan}
					if o.Alive {
						o.Title = "Group Chat " + g.code
						o.Members = 20 + rng.intn(480)
						switch g.p {
						case platform.WhatsApp:
							o.CreatorPhoneH = g.phoneH
							o.CreatorKey = g.phoneH
							o.CreatorCountry = g.country
						case platform.Telegram:
							o.Online = rng.intn(o.Members)
							o.IsChannel = i%8 == 0
						case platform.Discord:
							o.Online = rng.intn(o.Members)
							o.CreatorKey = "dc-inviter-" + strconv.Itoa(i)
							o.CreatedAt = base2.Add(-time.Duration(rng.intn(10000)) * time.Hour)
						}
					}
					s.AddObservation(g.p, g.code, o)
					nRecs++
				}
			}
			return s
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = buildStore()
		}
		b.StopTimer()
		obj, bytes := liveBytes(buildStore)
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(nRecs), "ns/rec")
		b.ReportMetric(float64(bytes)/float64(nRecs), "liveB/rec")
		runtime.KeepAlive(obj)
	})

	b.Run("users", func(b *testing.B) {
		n := int(50_000 * scale)
		batch := make([]UserRecord, ingestBatchSize)
		buildStore := func() any {
			s := New()
			rng := benchPCG(44)
			for done := 0; done < n; done += len(batch) {
				if rem := n - done; rem < len(batch) {
					batch = batch[:rem]
				}
				fillUserBatch(batch, &rng, n)
				s.UpsertUserBatch(batch)
			}
			return s
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = buildStore()
		}
		b.StopTimer()
		obj, bytes := liveBytes(buildStore)
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/rec")
		b.ReportMetric(float64(bytes)/float64(n), "liveB/rec")
		runtime.KeepAlive(obj)
	})
}

// BenchmarkStoreIngestSpill is the memory-budget acceptance gate: the same
// tweet+message corpus as BenchmarkStoreIngest, ingested under a spill
// budget with periodic SpillCheck sweeps (the engine's hourly cadence,
// compressed). Alongside ns/rec it reports the kernel's peak RSS and the
// runtime's live heap in MB — the two numbers the budget is supposed to
// hold down — and `make bench-compare` gates both like any other
// lower-is-better metric. Knobs:
//
//	MSGSCOPE_SPILL_BUDGET   — spill budget in bytes (default 8 MiB, small
//	                          enough that the default corpus seals often)
//	MSGSCOPE_BENCH_RSS_MAX  — hard ceiling in bytes; the benchmark FAILS
//	                          if peak RSS exceeds it (bench-scale sets it)
func BenchmarkStoreIngestSpill(b *testing.B) {
	base := time.Date(2020, 4, 8, 0, 0, 0, 0, time.UTC)
	scale := benchScale()
	budget := int64(8 << 20)
	if s := os.Getenv("MSGSCOPE_SPILL_BUDGET"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v > 0 {
			budget = v
		}
	}
	var rssMax int64
	if s := os.Getenv("MSGSCOPE_BENCH_RSS_MAX"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v > 0 {
			rssMax = v
		}
	}

	nT := int(100_000 * scale)
	nM := int(200_000 * scale)
	tweetBatch := make([]TweetIngest, ingestBatchSize)
	msgBatch := make([]MessageRecord, ingestBatchSize)
	var textBuf []byte
	var stats SpillStats

	// Reset the kernel watermark so peak RSS measures this benchmark, not
	// whatever ran before it in the same process. Best-effort: when the
	// write is denied the whole-process peak still bounds ours from above,
	// which keeps the RSS_MAX gate conservative.
	prof.ResetPeakRSS()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		if err := s.EnableSpill(SpillConfig{Dir: b.TempDir(), Budget: budget}); err != nil {
			b.Fatal(err)
		}
		rng := benchPCG(42)
		for done, sweep := 0, 0; done < nT; done += len(tweetBatch) {
			if rem := nT - done; rem < len(tweetBatch) {
				tweetBatch = tweetBatch[:rem]
			}
			textBuf = fillTweetBatch(tweetBatch, &rng, base, uint64(done+1), nT, textBuf)
			s.AddTweetBatch(tweetBatch)
			if sweep++; sweep%8 == 0 {
				if err := s.SpillCheck(); err != nil {
					b.Fatal(err)
				}
			}
		}
		rng = benchPCG(43)
		for done := 0; done < nM; done += len(msgBatch) {
			if rem := nM - done; rem < len(msgBatch) {
				msgBatch = msgBatch[:rem]
			}
			fillMessageBatch(msgBatch, &rng, base, uint64(done), nM)
			s.AddMessageBatch(msgBatch) // self-seals past budget/2 on its own
		}
		if err := s.SpillCheck(); err != nil {
			b.Fatal(err)
		}
		stats = s.SpillStats()
	}
	b.StopTimer()
	if stats.Segments == 0 {
		b.Fatalf("budget %d sealed no segments over %d+%d records; the gate is vacuous", budget, nT, nM)
	}
	runtime.GC()
	peak := prof.PeakRSSBytes()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(nT+nM), "ns/rec")
	if peak > 0 {
		b.ReportMetric(float64(peak)/float64(1<<20), "peakRSS-MB")
	}
	b.ReportMetric(float64(prof.HeapLiveBytes())/float64(1<<20), "heapLive-MB")
	b.ReportMetric(float64(stats.SegBytes)/float64(1<<20), "segDisk-MB")
	if rssMax > 0 && peak > rssMax {
		b.Fatalf("peak RSS %d bytes exceeds MSGSCOPE_BENCH_RSS_MAX %d", peak, rssMax)
	}
}

// BenchmarkStoreIngestParallel drives AddTweetBatch and UpsertUserBatch
// from GOMAXPROCS goroutines at once — the shape of the parallel
// search/collect fan-out — so the -cpus matrix can measure how ingest
// scales with cores (the striped store's reason to exist).
func BenchmarkStoreIngestParallel(b *testing.B) {
	base := time.Date(2020, 4, 8, 0, 0, 0, 0, time.UTC)
	n := int(20_000 * benchScale())
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		batch := make([]TweetIngest, ingestBatchSize)
		users := make([]UserRecord, ingestBatchSize/4)
		var textBuf []byte
		seed := benchPCG(uint64(os.Getpid()))
		for pb.Next() {
			s := New()
			rng := benchPCG(seed.next())
			for done := 0; done < n; done += len(batch) {
				textBuf = fillTweetBatch(batch, &rng, base, uint64(done+1), n, textBuf)
				s.AddTweetBatch(batch)
				fillUserBatch(users, &rng, n)
				s.UpsertUserBatch(users)
			}
		}
	})
}

var _ = fmt.Sprintf // keep fmt for debug printing during development
