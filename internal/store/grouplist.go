package store

import (
	"time"

	"msgscope/internal/ids"
	"msgscope/internal/platform"
)

// groupStripeView is a header-copied snapshot of one stripe's group and
// observation columns, taken under the stripe lock and safe to read after
// it is released: rows the view covers were fully written before the view
// was taken, appends never move them, and compaction swaps in fresh
// slices. Like the former pointer layout, reading a row concurrently with
// a mutation of that same row is undefined — the pipeline only reads at
// phase boundaries, after the writers of the previous phase quiesced.
type groupStripeView struct {
	plat        []uint8
	flags       []uint8
	code        []uint32
	canonical   []uint32
	creatorKey  []uint32
	deferReason []uint32
	firstSeen   []int64
	lastSeen    []int64
	joinedAt    []int64
	createdAt   []int64
	tweets      []int32
	socialPosts []int32
	members     []int32
	channels    []int32
	obsHead     []uint32
	obsTail     []uint32
	obsCount    []uint32
	obs         obsCols
	tab         *ids.Table
}

func (st *groupStripe) viewLocked() groupStripeView {
	n := st.len()
	return groupStripeView{
		plat: st.plat[:n], flags: st.flags[:n],
		code: st.code[:n], canonical: st.canonical[:n],
		creatorKey: st.creatorKey[:n], deferReason: st.deferReason[:n],
		firstSeen: st.firstSeen[:n], lastSeen: st.lastSeen[:n],
		joinedAt: st.joinedAt[:n], createdAt: st.createdAt[:n],
		tweets: st.tweets[:n], socialPosts: st.socialPosts[:n],
		members: st.members[:n], channels: st.channels[:n],
		obsHead: st.obsHead[:n], obsTail: st.obsTail[:n], obsCount: st.obsCount[:n],
		obs: st.obs.view(), tab: st.tab,
	}
}

// at materializes row's scalar record (Observations nil), allocation-free:
// strings are interned lookups, times rebuilt from unixNano.
func (v *groupStripeView) at(row uint32) GroupRecord {
	f := v.flags[row]
	return GroupRecord{
		Platform:      platform.Platform(v.plat[row]),
		Code:          v.tab.Lookup(v.code[row]),
		Canonical:     v.tab.Lookup(v.canonical[row]),
		FirstSeen:     nanoToTime(v.firstSeen[row]),
		LastSeen:      nanoToTime(v.lastSeen[row]),
		Tweets:        int(v.tweets[row]),
		SeenTwitter:   f&gfSeenTwitter != 0,
		SeenSocial:    f&gfSeenSocial != 0,
		SocialPosts:   int(v.socialPosts[row]),
		Joined:        f&gfJoined != 0,
		JoinedAt:      nanoToTime(v.joinedAt[row]),
		CreatedAt:     nanoToTime(v.createdAt[row]),
		HiddenMembers: f&gfHiddenMembers != 0,
		IsChannel:     f&gfIsChannel != 0,
		Channels:      int(v.channels[row]),
		MemberCount:   int(v.members[row]),
		CreatorKey:    v.tab.Lookup(v.creatorKey[row]),
		Deferred:      f&gfDeferred != 0,
		DeferReason:   v.tab.Lookup(v.deferReason[row]),
	}
}

// stripeViews is the set of per-stripe views a GroupList resolves rows
// through; Snapshot takes one set and shares it across every list it
// hands out.
type stripeViews [numStripes]groupStripeView

// viewsLocked captures every stripe's column headers. Caller holds
// cacheMu; stripesHeld as for rebuildLocked.
func (gt *groupTable) viewsLocked(stripesHeld bool) *stripeViews {
	views := new(stripeViews)
	for i := range gt.stripes {
		st := &gt.stripes[i]
		if !stripesHeld {
			st.mu.Lock()
		}
		views[i] = st.viewLocked()
		if !stripesHeld {
			st.mu.Unlock()
		}
	}
	return views
}

// GroupList is a read-only view of groups: the whole family or a
// ref-selected subset (one platform, the joined sample), in (platform,
// code) order. At materializes a GroupRecord's scalar fields without
// allocating; the observation series is addressed separately through
// Obs, and Record joins the two for callers that need the full wire
// record (Save, Group).
type GroupList struct {
	views *stripeViews
	refs  []groupRef
}

// Len reports the number of groups in the view.
func (l GroupList) Len() int { return len(l.refs) }

// At returns the i'th group's scalar record. Observations is nil — use
// Obs(i) for the daily series or Record(i) for the full wire record. The
// record's strings alias store-owned memory: share them freely, but
// treat them as immutable.
func (l GroupList) At(i int) GroupRecord {
	r := l.refs[i]
	return l.views[r>>stripeShift].at(uint32(r) & stripeMask)
}

// Obs returns the i'th group's observation series.
func (l GroupList) Obs(i int) ObsList {
	r := l.refs[i]
	v := &l.views[r>>stripeShift]
	row := uint32(r) & stripeMask
	return ObsList{
		v:    v,
		head: v.obsHead[row],
		tail: v.obsTail[row],
		n:    v.obsCount[row],
	}
}

// Record returns the i'th group's full record with its observation series
// materialized — the JSONL wire form. The slice is freshly allocated and
// caller-owned.
func (l GroupList) Record(i int) GroupRecord {
	g := l.At(i)
	if obs := l.Obs(i); obs.Len() > 0 {
		s := make([]Observation, 0, obs.Len())
		obs.Each(func(o Observation) bool {
			s = append(s, o)
			return true
		})
		g.Observations = s
	}
	return g
}

// Where returns the sub-view of groups satisfying keep, preserving order.
func (l GroupList) Where(keep func(GroupRecord) bool) GroupList {
	var refs []groupRef
	for i := range l.refs {
		if keep(l.At(i)) {
			refs = append(refs, l.refs[i])
		}
	}
	return GroupList{views: l.views, refs: refs}
}

// ObsList is a read-only view of one group's daily observation series, in
// probe order. After Snapshot's compaction the series is one dense column
// range and At is O(1); before it, rows are chained and At(i) walks i
// links — sequential consumers should use Each, which is O(n) either way.
type ObsList struct {
	v    *groupStripeView
	head uint32 // row+1; 0 = empty
	tail uint32
	n    uint32
}

// Len reports the number of observations.
func (l ObsList) Len() int { return int(l.n) }

// contiguous reports whether the series occupies the dense range
// [head-1, tail-1]: n distinct chained rows with tail-head+1 == n can
// leave no room for another group's rows in between.
func (l ObsList) contiguous() bool {
	return l.head != 0 && l.tail-l.head+1 == l.n
}

// At returns the i'th observation of the series.
func (l ObsList) At(i int) Observation {
	if l.contiguous() {
		return l.v.obs.recordAt(l.head - 1 + uint32(i), l.v.tab)
	}
	j := l.head
	for ; i > 0; i-- {
		j = l.nextOf(j)
	}
	return l.v.obs.recordAt(j-1, l.v.tab)
}

// nextOf follows one chain link, treating links past the view's horizon
// as end-of-chain (an append after the view was taken).
func (l ObsList) nextOf(j uint32) uint32 {
	n := l.v.obs.nextAt(int(j - 1))
	if int(n) > l.v.obs.total() {
		return 0
	}
	return n
}

// Each calls fn for every observation in probe order until fn returns
// false. Reconstruction is allocation-free.
func (l ObsList) Each(fn func(Observation) bool) {
	if l.n == 0 {
		return
	}
	if l.contiguous() {
		for i := l.head - 1; i < l.tail; i++ {
			if !fn(l.v.obs.recordAt(i, l.v.tab)) {
				return
			}
		}
		return
	}
	for j := l.head; j != 0; j = l.nextOf(j) {
		if !fn(l.v.obs.recordAt(j-1, l.v.tab)) {
			return
		}
	}
}

// Last returns the most recent observation (ok=false on an empty series)
// in O(1) via the chain tail.
func (l ObsList) Last() (Observation, bool) {
	if l.n == 0 {
		return Observation{}, false
	}
	return l.v.obs.recordAt(l.tail-1, l.v.tab), true
}

// The paper's analyses read a handful of "first/last matching" facts off
// each series; they used to be re-implemented as ad-hoc walks in
// report/figures.go, report/creators.go, report/aggregate.go, and the
// joiner. The helpers below are that logic's single home, each walking
// only the column it needs.

// FirstCreatedAt returns the first observation-reported creation date
// (Discord snowflakes), or the zero time.
func (l ObsList) FirstCreatedAt() time.Time {
	out := time.Time{}
	l.eachRow(func(j uint32) bool {
		if n := l.v.obs.createdNanoAt(int(j)); n != zeroTimeNano {
			out = nanoToTime(n)
			return false
		}
		return true
	})
	return out
}

// FirstCreatorKey returns the first observed creator key ("" if the
// platform never exposed one).
func (l ObsList) FirstCreatorKey() string {
	out := ""
	l.eachRow(func(j uint32) bool {
		if h := l.v.obs.creatorAt(int(j)); h != 0 {
			out = l.v.tab.Lookup(h)
			return false
		}
		return true
	})
	return out
}

// FirstCreatorCountry returns the first observed creator country ("" if
// never exposed).
func (l ObsList) FirstCreatorCountry() string {
	out := ""
	l.eachRow(func(j uint32) bool {
		if h := l.v.obs.countryAt(int(j)); h != 0 {
			out = l.v.tab.Lookup(h)
			return false
		}
		return true
	})
	return out
}

// LastTitle returns the most recently observed non-empty title ("" if the
// group never showed one).
func (l ObsList) LastTitle() string {
	h := uint32(0)
	l.eachRow(func(j uint32) bool {
		if t := l.v.obs.titleAt(int(j)); t != 0 {
			h = t
		}
		return true
	})
	return l.v.tab.Lookup(h)
}

// eachRow drives the walk helpers: fn sees raw row indexes in probe order
// and returns false to stop.
func (l ObsList) eachRow(fn func(row uint32) bool) {
	if l.n == 0 {
		return
	}
	if l.contiguous() {
		for i := l.head - 1; i < l.tail; i++ {
			if !fn(i) {
				return
			}
		}
		return
	}
	for j := l.head; j != 0; j = l.nextOf(j) {
		if !fn(j - 1) {
			return
		}
	}
}

// groups returns the all-groups view, sorted by platform then code.
func (gt *groupTable) groups() GroupList {
	gt.cacheMu.Lock()
	defer gt.cacheMu.Unlock()
	gt.rebuildLocked(false)
	return GroupList{views: gt.viewsLocked(false), refs: gt.sorted}
}

// groupsOf returns one platform's view, sorted by code.
func (gt *groupTable) groupsOf(p platform.Platform) GroupList {
	gt.cacheMu.Lock()
	defer gt.cacheMu.Unlock()
	gt.rebuildLocked(false)
	return GroupList{views: gt.viewsLocked(false), refs: gt.byPlat[p]}
}
