package store

import (
	"time"

	"msgscope/internal/jsonx"
	"msgscope/internal/platform"
)

// Hand-written jsonx codecs for the flat record types on the Save/Load
// hot path. Each appendJSON produces output byte-identical to
// encoding/json for the same struct (field order, omitempty behaviour,
// HTML-escaped strings, RFC 3339 timestamps), so switching a record type
// between the reflective and hand-written paths never changes the files
// on disk; codec_test.go holds encoding/json up as the differential
// oracle. GroupRecord deliberately has no codec: its nested observation
// series and many omitempty fields put it off the hot path and deep into
// diminishing returns, so it stays on encoding/json.

// jsonlCodec is implemented by record pointers with a hand-written
// encoder/decoder pair; WriteJSONL and ReadJSONL dispatch on it.
type jsonlCodec interface {
	appendJSON(dst []byte) []byte
	parseJSON(d *jsonx.Dec) error
}

// appendTime appends t as a quoted RFC 3339 timestamp, matching
// time.Time.MarshalJSON byte for byte (RFC3339Nano drops trailing
// fractional zeros exactly like the strict marshaller).
func appendTime(dst []byte, t time.Time) []byte {
	dst = append(dst, '"')
	dst = t.AppendFormat(dst, time.RFC3339Nano)
	return append(dst, '"')
}

func parseTime(d *jsonx.Dec, t *time.Time) error {
	s, err := d.StrBytes()
	if err != nil {
		return err
	}
	v, err := time.Parse(time.RFC3339, string(s))
	if err != nil {
		return err
	}
	*t = v
	return nil
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

// --- TweetRecord ---

func (t *TweetRecord) appendJSON(dst []byte) []byte {
	dst = append(dst, `{"id":`...)
	dst = jsonx.AppendUint(dst, t.ID)
	dst = append(dst, `,"user_id":`...)
	dst = jsonx.AppendString(dst, t.UserID)
	dst = append(dst, `,"created_at":`...)
	dst = appendTime(dst, t.CreatedAt)
	dst = append(dst, `,"lang":`...)
	dst = jsonx.AppendString(dst, t.Lang)
	dst = append(dst, `,"hashtags":`...)
	dst = jsonx.AppendInt(dst, int64(t.Hashtags))
	dst = append(dst, `,"mentions":`...)
	dst = jsonx.AppendInt(dst, int64(t.Mentions))
	dst = append(dst, `,"retweet":`...)
	dst = appendBool(dst, t.Retweet)
	dst = append(dst, `,"text":`...)
	dst = jsonx.AppendString(dst, t.Text)
	dst = append(dst, `,"platform":`...)
	dst = jsonx.AppendInt(dst, int64(t.Platform))
	dst = append(dst, `,"group_code":`...)
	dst = jsonx.AppendString(dst, t.GroupCode)
	dst = append(dst, `,"source":`...)
	dst = jsonx.AppendInt(dst, int64(t.Source))
	return append(dst, '}')
}

func (t *TweetRecord) parseJSON(d *jsonx.Dec) error {
	return d.Obj(func(key []byte) error {
		var err error
		switch string(key) {
		case "id":
			t.ID, err = d.Uint()
		case "user_id":
			t.UserID, err = d.Str()
		case "created_at":
			err = parseTime(d, &t.CreatedAt)
		case "lang":
			t.Lang, err = d.Str()
		case "hashtags":
			var v int64
			v, err = d.Int()
			t.Hashtags = int(v)
		case "mentions":
			var v int64
			v, err = d.Int()
			t.Mentions = int(v)
		case "retweet":
			t.Retweet, err = d.Bool()
		case "text":
			t.Text, err = d.Str()
		case "platform":
			var v int64
			v, err = d.Int()
			t.Platform = platform.Platform(v)
		case "group_code":
			t.GroupCode, err = d.Str()
		case "source":
			var v int64
			v, err = d.Int()
			t.Source = TweetSource(v)
		default:
			err = d.Skip()
		}
		return err
	})
}

// --- ControlRecord ---

func (c *ControlRecord) appendJSON(dst []byte) []byte {
	dst = append(dst, `{"id":`...)
	dst = jsonx.AppendUint(dst, c.ID)
	dst = append(dst, `,"user_id":`...)
	dst = jsonx.AppendString(dst, c.UserID)
	dst = append(dst, `,"created_at":`...)
	dst = appendTime(dst, c.CreatedAt)
	dst = append(dst, `,"lang":`...)
	dst = jsonx.AppendString(dst, c.Lang)
	dst = append(dst, `,"hashtags":`...)
	dst = jsonx.AppendInt(dst, int64(c.Hashtags))
	dst = append(dst, `,"mentions":`...)
	dst = jsonx.AppendInt(dst, int64(c.Mentions))
	dst = append(dst, `,"retweet":`...)
	dst = appendBool(dst, c.Retweet)
	return append(dst, '}')
}

func (c *ControlRecord) parseJSON(d *jsonx.Dec) error {
	return d.Obj(func(key []byte) error {
		var err error
		switch string(key) {
		case "id":
			c.ID, err = d.Uint()
		case "user_id":
			c.UserID, err = d.Str()
		case "created_at":
			err = parseTime(d, &c.CreatedAt)
		case "lang":
			c.Lang, err = d.Str()
		case "hashtags":
			var v int64
			v, err = d.Int()
			c.Hashtags = int(v)
		case "mentions":
			var v int64
			v, err = d.Int()
			c.Mentions = int(v)
		case "retweet":
			c.Retweet, err = d.Bool()
		default:
			err = d.Skip()
		}
		return err
	})
}

// --- MessageRecord ---

func (m *MessageRecord) appendJSON(dst []byte) []byte {
	dst = append(dst, `{"platform":`...)
	dst = jsonx.AppendInt(dst, int64(m.Platform))
	dst = append(dst, `,"group_code":`...)
	dst = jsonx.AppendString(dst, m.GroupCode)
	dst = append(dst, `,"author_key":`...)
	dst = jsonx.AppendUint(dst, m.AuthorKey)
	dst = append(dst, `,"sent_at":`...)
	dst = appendTime(dst, m.SentAt)
	dst = append(dst, `,"type":`...)
	dst = jsonx.AppendInt(dst, int64(m.Type))
	if m.Text != "" {
		dst = append(dst, `,"text":`...)
		dst = jsonx.AppendString(dst, m.Text)
	}
	return append(dst, '}')
}

func (m *MessageRecord) parseJSON(d *jsonx.Dec) error {
	return d.Obj(func(key []byte) error {
		var err error
		switch string(key) {
		case "platform":
			var v int64
			v, err = d.Int()
			m.Platform = platform.Platform(v)
		case "group_code":
			m.GroupCode, err = d.Str()
		case "author_key":
			m.AuthorKey, err = d.Uint()
		case "sent_at":
			err = parseTime(d, &m.SentAt)
		case "type":
			var v int64
			v, err = d.Int()
			m.Type = platform.MessageType(v)
		case "text":
			m.Text, err = d.Str()
		default:
			err = d.Skip()
		}
		return err
	})
}

// --- UserRecord ---

func (u *UserRecord) appendJSON(dst []byte) []byte {
	dst = append(dst, `{"platform":`...)
	dst = jsonx.AppendInt(dst, int64(u.Platform))
	dst = append(dst, `,"key":`...)
	dst = jsonx.AppendUint(dst, u.Key)
	if u.PhoneHash != "" {
		dst = append(dst, `,"phone_hash":`...)
		dst = jsonx.AppendString(dst, u.PhoneHash)
	}
	if u.Country != "" {
		dst = append(dst, `,"country":`...)
		dst = jsonx.AppendString(dst, u.Country)
	}
	if len(u.Linked) > 0 {
		dst = append(dst, `,"linked":[`...)
		for i, l := range u.Linked {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = jsonx.AppendString(dst, l)
		}
		dst = append(dst, ']')
	}
	if u.Creator {
		dst = append(dst, `,"creator":true`...)
	}
	return append(dst, '}')
}

func (u *UserRecord) parseJSON(d *jsonx.Dec) error {
	return d.Obj(func(key []byte) error {
		var err error
		switch string(key) {
		case "platform":
			var v int64
			v, err = d.Int()
			u.Platform = platform.Platform(v)
		case "key":
			u.Key, err = d.Uint()
		case "phone_hash":
			u.PhoneHash, err = d.Str()
		case "country":
			u.Country, err = d.Str()
		case "linked":
			if d.Null() {
				return nil
			}
			err = d.Arr(func() error {
				s, e := d.Str()
				if e != nil {
					return e
				}
				u.Linked = append(u.Linked, s)
				return nil
			})
		case "creator":
			u.Creator, err = d.Bool()
		default:
			err = d.Skip()
		}
		return err
	})
}

// --- PostRecord ---

func (p *PostRecord) appendJSON(dst []byte) []byte {
	dst = append(dst, `{"id":`...)
	dst = jsonx.AppendUint(dst, p.ID)
	dst = append(dst, `,"author":`...)
	dst = jsonx.AppendString(dst, p.Author)
	dst = append(dst, `,"created_at":`...)
	dst = appendTime(dst, p.CreatedAt)
	dst = append(dst, `,"text":`...)
	dst = jsonx.AppendString(dst, p.Text)
	dst = append(dst, `,"platform":`...)
	dst = jsonx.AppendInt(dst, int64(p.Platform))
	dst = append(dst, `,"group_code":`...)
	dst = jsonx.AppendString(dst, p.GroupCode)
	return append(dst, '}')
}

func (p *PostRecord) parseJSON(d *jsonx.Dec) error {
	return d.Obj(func(key []byte) error {
		var err error
		switch string(key) {
		case "id":
			p.ID, err = d.Uint()
		case "author":
			p.Author, err = d.Str()
		case "created_at":
			err = parseTime(d, &p.CreatedAt)
		case "text":
			p.Text, err = d.Str()
		case "platform":
			var v int64
			v, err = d.Int()
			p.Platform = platform.Platform(v)
		case "group_code":
			p.GroupCode, err = d.Str()
		default:
			err = d.Skip()
		}
		return err
	})
}
