package store

import (
	"maps"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"msgscope/internal/ids"
	"msgscope/internal/platform"
)

// Lock striping for the keyed families (groups, users). The parallel
// search/collect fan-out and the 16-worker daily sweep used to serialize
// on one groupMu/userMu; hashing each key to one of 64 stripes lets
// writers touching different keys proceed concurrently. 64 stripes is
// comfortably past the pipeline's maximum writer parallelism (16 sweep
// workers + search workers) while keeping the per-stripe fixed cost
// (a mutex and an empty map) negligible.
//
// Lock order: a writer holds at most one stripe lock at a time; batch
// operations visit stripes in ascending index order. The sorted-cache
// rebuild and Snapshot take cacheMu first, then stripe locks in ascending
// index order; see Store's doc comment for the total order across
// families.
const (
	numStripes  = 64
	stripeShift = 26 // packed ref layout: stripe<<26 | row
	stripeMask  = 1<<stripeShift - 1
)

func stripeHash(code string, p platform.Platform) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(code); i++ {
		h = (h ^ uint32(code[i])) * 16777619
	}
	return (h ^ uint32(p)*0x9e3779b9) & (numStripes - 1)
}

func userStripeHash(key uint64, p platform.Platform) uint32 {
	h := key * 0x9e3779b97f4a7c15
	return (uint32(h>>32) ^ uint32(p)) & (numStripes - 1)
}

// groupRef packs a group's location (stripe, row) into 32 bits, replacing
// the former []*GroupRecord sorted caches. The columnar group family
// itself lives in groupcols.go (columns, table) and grouplist.go (views).
type groupRef uint32

func makeGroupRef(stripe, row uint32) groupRef {
	return groupRef(stripe<<stripeShift | row)
}

// userRef packs a user's (stripe, row) like groupRef.
type userRef uint32

// userStripe holds one stripe's users in columnar form: packed numeric
// columns, phone hashes in a byte arena, countries interned to handles.
// Linked-account sets (rare; Discord only) live in a sparse side map.
type userStripe struct {
	mu      sync.Mutex
	m       map[userKey]uint32 // key -> row
	plat    []uint8
	key     []uint64
	phOff   []uint32
	phLen   []uint32
	country []uint32
	creator []bool
	linked  map[uint32][]string
	arena   []byte

	// Checkpoint dirty tracking (armed by OpenCheckpointWriter): rows
	// below ckMark were already captured, so a merge that actually
	// changes one records it in ckDirty for re-emission. Nil when
	// checkpointing is off.
	ckMark  uint32
	ckDirty map[uint32]struct{}
}

// phoneAt returns the stored phone hash as a zero-copy view.
func (st *userStripe) phoneAt(row uint32) string {
	if st.phLen[row] == 0 {
		return ""
	}
	return unsafe.String(&st.arena[st.phOff[row]], int(st.phLen[row]))
}

// heapBytes is the stripe's column footprint — part of the resident floor
// SpillStats reports (merges rewrite rows in place, so the user family
// never spills). Caller holds st.mu.
func (st *userStripe) heapBytes() int64 {
	return sliceBytes(st.plat) + sliceBytes(st.key) + sliceBytes(st.phOff) +
		sliceBytes(st.phLen) + sliceBytes(st.country) + sliceBytes(st.creator) +
		int64(cap(st.arena))
}

// userStripeView is a header-copied snapshot of a stripe's columns, safe
// to read after the stripe lock is released (appends never move rows the
// view covers; linked is cloned because maps cannot be read during
// concurrent insertion).
type userStripeView struct {
	plat    []uint8
	key     []uint64
	phOff   []uint32
	phLen   []uint32
	country []uint32
	creator []bool
	linked  map[uint32][]string
	arena   []byte
}

func (st *userStripe) viewLocked() userStripeView {
	n := len(st.key)
	return userStripeView{
		plat: st.plat[:n], key: st.key[:n],
		phOff: st.phOff[:n], phLen: st.phLen[:n],
		country: st.country[:n], creator: st.creator[:n],
		linked: maps.Clone(st.linked), arena: st.arena,
	}
}

func (v userStripeView) at(row uint32, countries *ids.Table) UserRecord {
	var phone string
	if v.phLen[row] > 0 {
		phone = unsafe.String(&v.arena[v.phOff[row]], int(v.phLen[row]))
	}
	return UserRecord{
		Platform:  platform.Platform(v.plat[row]),
		Key:       v.key[row],
		PhoneHash: phone,
		Country:   countries.Lookup(v.country[row]),
		Linked:    v.linked[row],
		Creator:   v.creator[row],
	}
}

// lockedTable serializes interning on an ids.Table shared by all user
// stripes (countries); lookups stay lock-free.
type lockedTable struct {
	mu sync.Mutex
	t  *ids.Table
}

func (lt *lockedTable) handle(s string) uint32 {
	lt.mu.Lock()
	h := lt.t.Handle(s)
	lt.mu.Unlock()
	return h
}

// userTable is the striped, columnar user family.
type userTable struct {
	stripes   [numStripes]userStripe
	countries lockedTable

	cacheMu sync.Mutex
	dirty   atomic.Bool
	sorted  []userRef
}

func newUserTable() *userTable {
	ut := &userTable{countries: lockedTable{t: ids.NewTable()}}
	ut.countries.t.Handle("") // handle 0 is the empty country
	for i := range ut.stripes {
		ut.stripes[i].m = map[userKey]uint32{}
	}
	return ut
}

// upsert merges one observed user under their stripe's lock, with the same
// commutative semantics as before: fields fill in, Linked accumulates as a
// set, Creator only ever clears.
func (ut *userTable) upsert(u *UserRecord) {
	si := userStripeHash(u.Key, u.Platform)
	st := &ut.stripes[si]
	st.mu.Lock()
	ut.upsertLocked(st, u)
	st.mu.Unlock()
}

func (ut *userTable) upsertLocked(st *userStripe, u *UserRecord) {
	k := userKey{u.Platform, u.Key}
	row, ok := st.m[k]
	if !ok {
		row = uint32(len(st.key))
		st.m[k] = row
		st.plat = append(st.plat, uint8(u.Platform))
		st.key = append(st.key, u.Key)
		st.phOff = append(st.phOff, uint32(len(st.arena)))
		st.phLen = append(st.phLen, uint32(len(u.PhoneHash)))
		st.arena = append(st.arena, u.PhoneHash...)
		var country uint32
		if u.Country != "" {
			country = ut.countries.handle(u.Country)
		}
		st.country = append(st.country, country)
		st.creator = append(st.creator, u.Creator)
		if len(u.Linked) > 0 {
			if st.linked == nil {
				st.linked = map[uint32][]string{}
			}
			st.linked[row] = u.Linked
		}
		ut.dirty.Store(true)
		return
	}
	changed := false
	if u.PhoneHash != "" && u.PhoneHash != st.phoneAt(row) {
		if uint32(len(u.PhoneHash)) <= st.phLen[row] {
			copy(st.arena[st.phOff[row]:], u.PhoneHash)
		} else {
			st.phOff[row] = uint32(len(st.arena))
			st.arena = append(st.arena, u.PhoneHash...)
		}
		st.phLen[row] = uint32(len(u.PhoneHash))
		changed = true
	}
	if u.Country != "" {
		if h := ut.countries.handle(u.Country); st.country[row] != h {
			st.country[row] = h
			changed = true
		}
	}
	if len(u.Linked) > 0 {
		// The merge is a set union, so growth ⇔ change.
		old := st.linked[row]
		if merged := mergeStrings(old, u.Linked); len(merged) != len(old) {
			if st.linked == nil {
				st.linked = map[uint32][]string{}
			}
			st.linked[row] = merged
			changed = true
		}
	}
	// A user seen as a member is no longer creator-only.
	if !u.Creator && st.creator[row] {
		st.creator[row] = false
		changed = true
	}
	if changed && st.ckDirty != nil && row < st.ckMark {
		st.ckDirty[row] = struct{}{}
	}
}

// rebuildLocked refreshes the sorted (platform, key) ref cache. Caller
// holds cacheMu; stripesHeld as for groupTable.
func (ut *userTable) rebuildLocked(stripesHeld bool) {
	if !ut.dirty.Swap(false) && ut.sorted != nil {
		return
	}
	type entry struct {
		p   platform.Platform
		key uint64
		ref userRef
	}
	var all []entry
	for i := range ut.stripes {
		st := &ut.stripes[i]
		if !stripesHeld {
			st.mu.Lock()
		}
		for k, row := range st.m {
			all = append(all, entry{k.p, k.key, userRef(uint32(i)<<stripeShift | row)})
		}
		if !stripesHeld {
			st.mu.Unlock()
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].p != all[j].p {
			return all[i].p < all[j].p
		}
		return all[i].key < all[j].key
	})
	ut.sorted = make([]userRef, len(all))
	for i, e := range all {
		ut.sorted[i] = e.ref
	}
}

// users materializes the sorted user records. Unlike the former layout
// there are no per-user heap records to point at, so each call builds a
// fresh backing array; records share the store's interned strings and
// arena-backed phone hashes.
func (ut *userTable) users() []*UserRecord {
	ut.cacheMu.Lock()
	defer ut.cacheMu.Unlock()
	ut.rebuildLocked(false)
	return ut.materializeLocked(false)
}

// materializeLocked resolves the sorted refs into records. Caller holds
// cacheMu; stripesHeld as for rebuildLocked.
func (ut *userTable) materializeLocked(stripesHeld bool) []*UserRecord {
	views := make([]userStripeView, numStripes)
	seen := make([]bool, numStripes)
	backing := make([]UserRecord, len(ut.sorted))
	out := make([]*UserRecord, len(ut.sorted))
	for i, r := range ut.sorted {
		si := uint32(r) >> stripeShift
		if !seen[si] {
			st := &ut.stripes[si]
			if !stripesHeld {
				st.mu.Lock()
			}
			views[si] = st.viewLocked()
			if !stripesHeld {
				st.mu.Unlock()
			}
			seen[si] = true
		}
		backing[i] = views[si].at(uint32(r)&stripeMask, ut.countries.t)
		out[i] = &backing[i]
	}
	return out
}

func (ut *userTable) lockAll() {
	ut.cacheMu.Lock()
	for i := range ut.stripes {
		ut.stripes[i].mu.Lock()
	}
}

func (ut *userTable) unlockAll() {
	for i := range ut.stripes {
		ut.stripes[i].mu.Unlock()
	}
	ut.cacheMu.Unlock()
}
