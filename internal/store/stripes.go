package store

import (
	"maps"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"msgscope/internal/ids"
	"msgscope/internal/platform"
)

// Lock striping for the keyed families (groups, users). The parallel
// search/collect fan-out and the 16-worker daily sweep used to serialize
// on one groupMu/userMu; hashing each key to one of 64 stripes lets
// writers touching different keys proceed concurrently. 64 stripes is
// comfortably past the pipeline's maximum writer parallelism (16 sweep
// workers + search workers) while keeping the per-stripe fixed cost
// (a mutex and an empty map) negligible.
//
// Lock order: a writer holds at most one stripe lock at a time; batch
// operations visit stripes in ascending index order. The sorted-cache
// rebuild and Snapshot take cacheMu first, then stripe locks in ascending
// index order; see Store's doc comment for the total order across
// families.
const (
	numStripes  = 64
	stripeShift = 26 // packed ref layout: stripe<<26 | row
	stripeMask  = 1<<stripeShift - 1
)

func stripeHash(code string, p platform.Platform) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(code); i++ {
		h = (h ^ uint32(code[i])) * 16777619
	}
	return (h ^ uint32(p)*0x9e3779b9) & (numStripes - 1)
}

func userStripeHash(key uint64, p platform.Platform) uint32 {
	h := key * 0x9e3779b97f4a7c15
	return (uint32(h>>32) ^ uint32(p)) & (numStripes - 1)
}

// groupRef packs a group's location (stripe, row) into 32 bits, replacing
// the former []*GroupRecord sorted caches.
type groupRef uint32

func makeGroupRef(stripe, row uint32) groupRef {
	return groupRef(stripe<<stripeShift | row)
}

// groupBlockShift sizes the per-stripe record blocks (64 records, 16 KiB
// at GroupRecord's 256 bytes). Blocks are fixed-size arrays so records
// never move once created: Group() can hand out *GroupRecord pointers that
// stay valid while the stripe keeps growing. Small blocks keep the tail
// waste per stripe (at most one block minus one record) negligible even
// multiplied by 64 stripes.
const groupBlockShift = 6

type groupBlock [1 << groupBlockShift]GroupRecord

type groupStripe struct {
	mu     sync.Mutex
	m      map[groupKey]uint32 // key -> row within this stripe
	n      uint32
	blocks atomic.Pointer[[]*groupBlock] // atomic so refs resolve lock-free
}

// rowPtr resolves a row to its record. Safe without the stripe lock for
// rows published before the caller learned about them (block slots are
// written once, under the stripe lock, before the row is reachable).
func (st *groupStripe) rowPtr(row uint32) *GroupRecord {
	blocks := *st.blocks.Load()
	return &blocks[row>>groupBlockShift][row&(1<<groupBlockShift-1)]
}

// appendLocked claims the next row. Caller holds st.mu.
func (st *groupStripe) appendLocked() uint32 {
	row := st.n
	blocks := *st.blocks.Load()
	if int(row)>>groupBlockShift == len(blocks) {
		// Spare directory capacity is reused in place (the new slot is not
		// visible to readers yet); a full directory is copied and doubled.
		grown := blocks
		if len(blocks) == cap(blocks) {
			grown = make([]*groupBlock, len(blocks), cap(blocks)*2+1)
			copy(grown, blocks)
		}
		grown = append(grown, new(groupBlock))
		st.blocks.Store(&grown)
	}
	st.n = row + 1
	return row
}

// groupTable is the striped group family.
type groupTable struct {
	stripes [numStripes]groupStripe

	cacheMu sync.Mutex
	dirty   atomic.Bool
	sorted  []groupRef
	// byPlat partitions sorted (which is ordered by platform, then code)
	// into contiguous subslices, one per platform.
	byPlat map[platform.Platform][]groupRef
}

func newGroupTable() *groupTable {
	gt := &groupTable{}
	for i := range gt.stripes {
		st := &gt.stripes[i]
		st.m = map[groupKey]uint32{}
		blocks := make([]*groupBlock, 0)
		st.blocks.Store(&blocks)
	}
	return gt
}

func (gt *groupTable) stripeFor(p platform.Platform, code string) (uint32, *groupStripe) {
	i := stripeHash(code, p)
	return i, &gt.stripes[i]
}

// upsertLocked returns the group record for (p, code), creating it on
// first sight and widening its first/last-seen window. Caller holds
// st.mu.
func (gt *groupTable) upsertLocked(st *groupStripe, p platform.Platform, code string, at time.Time) (*GroupRecord, bool) {
	k := groupKey{p, code}
	row, ok := st.m[k]
	isNew := false
	if !ok {
		row = st.appendLocked()
		st.m[k] = row
		*st.rowPtr(row) = GroupRecord{Platform: p, Code: code, FirstSeen: at, LastSeen: at}
		gt.dirty.Store(true)
		isNew = true
	}
	g := st.rowPtr(row)
	if at.Before(g.FirstSeen) {
		g.FirstSeen = at
	}
	if at.After(g.LastSeen) {
		g.LastSeen = at
	}
	return g, isNew
}

// get returns the record for a key (nil if unknown). The returned pointer
// is stable for the life of the store.
func (gt *groupTable) get(p platform.Platform, code string) *GroupRecord {
	_, st := gt.stripeFor(p, code)
	st.mu.Lock()
	defer st.mu.Unlock()
	if row, ok := st.m[groupKey{p, code}]; ok {
		return st.rowPtr(row)
	}
	return nil
}

// with runs fn on the record for a key under its stripe lock; unknown keys
// are a no-op.
func (gt *groupTable) with(p platform.Platform, code string, fn func(*GroupRecord)) {
	_, st := gt.stripeFor(p, code)
	st.mu.Lock()
	if row, ok := st.m[groupKey{p, code}]; ok {
		fn(st.rowPtr(row))
	}
	st.mu.Unlock()
}

// put replaces (or creates) the record for g's key with *g — the Load path
// installing authoritative saved records over tweet-built skeletons.
func (gt *groupTable) put(g *GroupRecord) {
	_, st := gt.stripeFor(g.Platform, g.Code)
	st.mu.Lock()
	k := groupKey{g.Platform, g.Code}
	row, ok := st.m[k]
	if !ok {
		row = st.appendLocked()
		st.m[k] = row
		gt.dirty.Store(true)
	}
	*st.rowPtr(row) = *g
	st.mu.Unlock()
}

// resolve maps a cached ref to its record; safe once the ref is published.
func (gt *groupTable) resolve(r groupRef) *GroupRecord {
	return gt.stripes[r>>stripeShift].rowPtr(uint32(r) & stripeMask)
}

// rebuildLocked refreshes the sorted ref cache and its per-platform
// partitions. Caller holds cacheMu; stripesHeld says whether the caller
// already holds every stripe lock (Snapshot does).
func (gt *groupTable) rebuildLocked(stripesHeld bool) {
	if !gt.dirty.Swap(false) && gt.sorted != nil {
		return
	}
	type entry struct {
		p    platform.Platform
		code string
		ref  groupRef
	}
	var all []entry
	for i := range gt.stripes {
		st := &gt.stripes[i]
		if !stripesHeld {
			st.mu.Lock()
		}
		for k, row := range st.m {
			all = append(all, entry{k.p, k.code, makeGroupRef(uint32(i), row)})
		}
		if !stripesHeld {
			st.mu.Unlock()
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].p != all[j].p {
			return all[i].p < all[j].p
		}
		return all[i].code < all[j].code
	})
	sorted := make([]groupRef, len(all))
	for i, e := range all {
		sorted[i] = e.ref
	}
	byPlat := map[platform.Platform][]groupRef{}
	for lo := 0; lo < len(all); {
		hi := lo
		for hi < len(all) && all[hi].p == all[lo].p {
			hi++
		}
		byPlat[all[lo].p] = sorted[lo:hi:hi]
		lo = hi
	}
	gt.sorted = sorted
	gt.byPlat = byPlat
}

func (gt *groupTable) materialize(refs []groupRef) []*GroupRecord {
	out := make([]*GroupRecord, len(refs))
	for i, r := range refs {
		out[i] = gt.resolve(r)
	}
	return out
}

// groups returns all records sorted by platform then code (fresh pointer
// slice per call, as before — callers may reorder it).
func (gt *groupTable) groups() []*GroupRecord {
	gt.cacheMu.Lock()
	defer gt.cacheMu.Unlock()
	gt.rebuildLocked(false)
	return gt.materialize(gt.sorted)
}

func (gt *groupTable) groupsOf(p platform.Platform) []*GroupRecord {
	gt.cacheMu.Lock()
	defer gt.cacheMu.Unlock()
	gt.rebuildLocked(false)
	return gt.materialize(gt.byPlat[p])
}

// countFor tallies one platform's Table 2 group counters.
func (gt *groupTable) countFor(p platform.Platform) (urls, joined int) {
	for i := range gt.stripes {
		st := &gt.stripes[i]
		st.mu.Lock()
		for k, row := range st.m {
			if k.p != p {
				continue
			}
			urls++
			if st.rowPtr(row).Joined {
				joined++
			}
		}
		st.mu.Unlock()
	}
	return urls, joined
}

// lockAll/unlockAll bracket Snapshot's consistent read: cacheMu first,
// then every stripe in ascending index order.
func (gt *groupTable) lockAll() {
	gt.cacheMu.Lock()
	for i := range gt.stripes {
		gt.stripes[i].mu.Lock()
	}
}

func (gt *groupTable) unlockAll() {
	for i := range gt.stripes {
		gt.stripes[i].mu.Unlock()
	}
	gt.cacheMu.Unlock()
}

// userRef packs a user's (stripe, row) like groupRef.
type userRef uint32

// userStripe holds one stripe's users in columnar form: packed numeric
// columns, phone hashes in a byte arena, countries interned to handles.
// Linked-account sets (rare; Discord only) live in a sparse side map.
type userStripe struct {
	mu      sync.Mutex
	m       map[userKey]uint32 // key -> row
	plat    []uint8
	key     []uint64
	phOff   []uint32
	phLen   []uint32
	country []uint32
	creator []bool
	linked  map[uint32][]string
	arena   []byte
}

// phoneAt returns the stored phone hash as a zero-copy view.
func (st *userStripe) phoneAt(row uint32) string {
	if st.phLen[row] == 0 {
		return ""
	}
	return unsafe.String(&st.arena[st.phOff[row]], int(st.phLen[row]))
}

// userStripeView is a header-copied snapshot of a stripe's columns, safe
// to read after the stripe lock is released (appends never move rows the
// view covers; linked is cloned because maps cannot be read during
// concurrent insertion).
type userStripeView struct {
	plat    []uint8
	key     []uint64
	phOff   []uint32
	phLen   []uint32
	country []uint32
	creator []bool
	linked  map[uint32][]string
	arena   []byte
}

func (st *userStripe) viewLocked() userStripeView {
	n := len(st.key)
	return userStripeView{
		plat: st.plat[:n], key: st.key[:n],
		phOff: st.phOff[:n], phLen: st.phLen[:n],
		country: st.country[:n], creator: st.creator[:n],
		linked: maps.Clone(st.linked), arena: st.arena,
	}
}

func (v userStripeView) at(row uint32, countries *ids.Table) UserRecord {
	var phone string
	if v.phLen[row] > 0 {
		phone = unsafe.String(&v.arena[v.phOff[row]], int(v.phLen[row]))
	}
	return UserRecord{
		Platform:  platform.Platform(v.plat[row]),
		Key:       v.key[row],
		PhoneHash: phone,
		Country:   countries.Lookup(v.country[row]),
		Linked:    v.linked[row],
		Creator:   v.creator[row],
	}
}

// lockedTable serializes interning on an ids.Table shared by all user
// stripes (countries); lookups stay lock-free.
type lockedTable struct {
	mu sync.Mutex
	t  *ids.Table
}

func (lt *lockedTable) handle(s string) uint32 {
	lt.mu.Lock()
	h := lt.t.Handle(s)
	lt.mu.Unlock()
	return h
}

// userTable is the striped, columnar user family.
type userTable struct {
	stripes   [numStripes]userStripe
	countries lockedTable

	cacheMu sync.Mutex
	dirty   atomic.Bool
	sorted  []userRef
}

func newUserTable() *userTable {
	ut := &userTable{countries: lockedTable{t: ids.NewTable()}}
	ut.countries.t.Handle("") // handle 0 is the empty country
	for i := range ut.stripes {
		ut.stripes[i].m = map[userKey]uint32{}
	}
	return ut
}

// upsert merges one observed user under their stripe's lock, with the same
// commutative semantics as before: fields fill in, Linked accumulates as a
// set, Creator only ever clears.
func (ut *userTable) upsert(u *UserRecord) {
	si := userStripeHash(u.Key, u.Platform)
	st := &ut.stripes[si]
	st.mu.Lock()
	ut.upsertLocked(st, u)
	st.mu.Unlock()
}

func (ut *userTable) upsertLocked(st *userStripe, u *UserRecord) {
	k := userKey{u.Platform, u.Key}
	row, ok := st.m[k]
	if !ok {
		row = uint32(len(st.key))
		st.m[k] = row
		st.plat = append(st.plat, uint8(u.Platform))
		st.key = append(st.key, u.Key)
		st.phOff = append(st.phOff, uint32(len(st.arena)))
		st.phLen = append(st.phLen, uint32(len(u.PhoneHash)))
		st.arena = append(st.arena, u.PhoneHash...)
		var country uint32
		if u.Country != "" {
			country = ut.countries.handle(u.Country)
		}
		st.country = append(st.country, country)
		st.creator = append(st.creator, u.Creator)
		if len(u.Linked) > 0 {
			if st.linked == nil {
				st.linked = map[uint32][]string{}
			}
			st.linked[row] = u.Linked
		}
		ut.dirty.Store(true)
		return
	}
	if u.PhoneHash != "" && u.PhoneHash != st.phoneAt(row) {
		if uint32(len(u.PhoneHash)) <= st.phLen[row] {
			copy(st.arena[st.phOff[row]:], u.PhoneHash)
		} else {
			st.phOff[row] = uint32(len(st.arena))
			st.arena = append(st.arena, u.PhoneHash...)
		}
		st.phLen[row] = uint32(len(u.PhoneHash))
	}
	if u.Country != "" {
		st.country[row] = ut.countries.handle(u.Country)
	}
	if len(u.Linked) > 0 {
		if st.linked == nil {
			st.linked = map[uint32][]string{}
		}
		st.linked[row] = mergeStrings(st.linked[row], u.Linked)
	}
	// A user seen as a member is no longer creator-only.
	if !u.Creator {
		st.creator[row] = false
	}
}

// rebuildLocked refreshes the sorted (platform, key) ref cache. Caller
// holds cacheMu; stripesHeld as for groupTable.
func (ut *userTable) rebuildLocked(stripesHeld bool) {
	if !ut.dirty.Swap(false) && ut.sorted != nil {
		return
	}
	type entry struct {
		p   platform.Platform
		key uint64
		ref userRef
	}
	var all []entry
	for i := range ut.stripes {
		st := &ut.stripes[i]
		if !stripesHeld {
			st.mu.Lock()
		}
		for k, row := range st.m {
			all = append(all, entry{k.p, k.key, userRef(uint32(i)<<stripeShift | row)})
		}
		if !stripesHeld {
			st.mu.Unlock()
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].p != all[j].p {
			return all[i].p < all[j].p
		}
		return all[i].key < all[j].key
	})
	ut.sorted = make([]userRef, len(all))
	for i, e := range all {
		ut.sorted[i] = e.ref
	}
}

// users materializes the sorted user records. Unlike the former layout
// there are no per-user heap records to point at, so each call builds a
// fresh backing array; records share the store's interned strings and
// arena-backed phone hashes.
func (ut *userTable) users() []*UserRecord {
	ut.cacheMu.Lock()
	defer ut.cacheMu.Unlock()
	ut.rebuildLocked(false)
	return ut.materializeLocked(false)
}

// materializeLocked resolves the sorted refs into records. Caller holds
// cacheMu; stripesHeld as for rebuildLocked.
func (ut *userTable) materializeLocked(stripesHeld bool) []*UserRecord {
	views := make([]userStripeView, numStripes)
	seen := make([]bool, numStripes)
	backing := make([]UserRecord, len(ut.sorted))
	out := make([]*UserRecord, len(ut.sorted))
	for i, r := range ut.sorted {
		si := uint32(r) >> stripeShift
		if !seen[si] {
			st := &ut.stripes[si]
			if !stripesHeld {
				st.mu.Lock()
			}
			views[si] = st.viewLocked()
			if !stripesHeld {
				st.mu.Unlock()
			}
			seen[si] = true
		}
		backing[i] = views[si].at(uint32(r)&stripeMask, ut.countries.t)
		out[i] = &backing[i]
	}
	return out
}

func (ut *userTable) lockAll() {
	ut.cacheMu.Lock()
	for i := range ut.stripes {
		ut.stripes[i].mu.Lock()
	}
}

func (ut *userTable) unlockAll() {
	for i := range ut.stripes {
		ut.stripes[i].mu.Unlock()
	}
	ut.cacheMu.Unlock()
}
