package store

import (
	"testing"
	"time"

	"msgscope/internal/ids"
	"msgscope/internal/platform"
)

// Hard allocation bounds on the steady-state ingest paths. These are
// regression gates, not benchmarks: the struct map keys and lazy update
// slice make re-ingest and lookup allocation-free, and these tests fail if
// a future change reintroduces a per-record allocation.

func tweetBatchFor(n int) []TweetIngest {
	base := time.Date(2019, 4, 1, 0, 0, 0, 0, time.UTC)
	batch := make([]TweetIngest, n)
	for i := range batch {
		batch[i] = TweetIngest{Tweet: TweetRecord{
			ID:        uint64(i + 1),
			UserID:    "u1",
			CreatedAt: base.Add(time.Duration(i) * time.Second),
			Platform:  platform.WhatsApp,
			GroupCode: "shared-group",
			Source:    SourceSearch,
		}}
	}
	return batch
}

func TestAddTweetBatchDuplicateAllocFree(t *testing.T) {
	s := New()
	batch := tweetBatchFor(64)
	s.AddTweetBatch(batch)

	// Re-ingesting the same batch (the other API seeing the same tweets)
	// only merges source bits and must not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		s.AddTweetBatch(batch)
	})
	if allocs > 0 {
		t.Errorf("AddTweetBatch duplicate re-ingest allocated %.1f objects/op, want 0", allocs)
	}
}

func TestUpsertUserBatchSteadyStateAllocFree(t *testing.T) {
	s := New()
	batch := make([]UserRecord, 64)
	for i := range batch {
		batch[i] = UserRecord{
			Platform:  platform.WhatsApp,
			Key:       uint64(i + 1),
			PhoneHash: "abcd",
			Country:   "BR",
		}
	}
	s.UpsertUserBatch(batch)

	// Merging already-known users (the daily sweep re-observing the same
	// members, with no new linked accounts) must not allocate.
	allocs := testing.AllocsPerRun(100, func() {
		s.UpsertUserBatch(batch)
	})
	if allocs > 0 {
		t.Errorf("UpsertUserBatch steady-state merge allocated %.1f objects/op, want 0", allocs)
	}
}

func TestGroupLookupAllocFree(t *testing.T) {
	s := New()
	s.AddTweetBatch(tweetBatchFor(4))

	// Group lookups and flag updates key the map with a struct, so the
	// monitor/join phases probe without building a "platform/code" string.
	// A record without observations materializes entirely on the stack.
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := s.Group(platform.WhatsApp, "shared-group"); !ok {
			t.Fatal("group missing")
		}
		s.MarkDeferred(platform.WhatsApp, "shared-group", "monitor")
	})
	if allocs > 0 {
		t.Errorf("group lookup allocated %.1f objects/op, want 0", allocs)
	}
}

// TestU64MapSteadyStateAllocFree gates the compact dedup index the tweet
// and post paths key on: probing a resident table (hit or miss) and
// overwriting existing keys must not allocate. Only an insert that trips
// the 90% load factor allocates (the doubled backing array).
func TestU64MapSteadyStateAllocFree(t *testing.T) {
	m := ids.NewU64Map(0)
	for i := uint64(1); i <= 4096; i++ {
		m.Put(i, uint32(i))
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := uint64(1); i <= 4096; i++ {
			if v, ok := m.Get(i); !ok || v != uint32(i) {
				t.Fatal("resident key missing")
			}
			m.Put(i, uint32(i)) // in-place overwrite
		}
		if _, ok := m.Get(1 << 60); ok {
			t.Fatal("phantom key")
		}
	})
	if allocs > 0 {
		t.Errorf("U64Map steady-state probing allocated %.1f objects/op, want 0", allocs)
	}
}

// TestGroupObservationAppendAllocFree gates the monitor's hottest write:
// appending a daily probe to a warm group's observation columns. Sweep
// fields are scalars or strings the interning table already holds (titles
// repeat day over day), so past amortized column growth the append itself
// must not allocate.
func TestGroupObservationAppendAllocFree(t *testing.T) {
	s := New()
	s.AddTweetBatch(tweetBatchFor(4))
	base := time.Date(2019, 4, 1, 0, 0, 0, 0, time.UTC)
	o := Observation{
		At: base, Alive: true, Title: "daily title", Members: 120, Online: 12,
		CreatorPhoneH: "abcd", CreatorCountry: "BR", CreatorKey: "abcd",
	}
	for i := 0; i < 4096; i++ {
		s.AddObservation(platform.WhatsApp, "shared-group", o)
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.AddObservation(platform.WhatsApp, "shared-group", o)
	})
	if allocs > 0 {
		t.Errorf("warm observation append allocated %.1f objects/op, want 0", allocs)
	}
}

// Columnar read-path gates: materializing a record from the packed columns
// must not allocate — strings come from the interning tables or arena
// views, times are rebuilt on the stack. A regression here multiplies
// across every experiment's full-corpus scan.

func TestTweetListAtAllocFree(t *testing.T) {
	s := New()
	batch := tweetBatchFor(64)
	for i := range batch {
		batch[i].Tweet.Text = "some tweet body text"
		batch[i].Tweet.Lang = "en"
	}
	s.AddTweetBatch(batch)
	tweets := s.Tweets()
	var sink int
	allocs := testing.AllocsPerRun(100, func() {
		for i, n := 0, tweets.Len(); i < n; i++ {
			tr := tweets.At(i)
			sink += len(tr.Text) + len(tr.UserID) + tr.Hashtags
		}
	})
	if allocs > 0 {
		t.Errorf("TweetList.At allocated %.1f objects per scan, want 0", allocs)
	}
	_ = sink
}

func TestMessageListAtAllocFree(t *testing.T) {
	s := New()
	base := time.Date(2019, 4, 1, 0, 0, 0, 0, time.UTC)
	msgs := make([]MessageRecord, 64)
	for i := range msgs {
		msgs[i] = MessageRecord{Platform: platform.Telegram, GroupCode: "g",
			AuthorKey: uint64(i), SentAt: base, Type: platform.Text}
	}
	s.AddMessageBatch(msgs)
	view := s.Messages()
	var sink uint64
	allocs := testing.AllocsPerRun(100, func() {
		for i, n := 0, view.Len(); i < n; i++ {
			m := view.At(i)
			sink += m.AuthorKey + uint64(len(m.GroupCode))
		}
	})
	if allocs > 0 {
		t.Errorf("MessageList.At allocated %.1f objects per scan, want 0", allocs)
	}
	_ = sink
}

func TestControlListAtAllocFree(t *testing.T) {
	s := New()
	base := time.Date(2019, 4, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 64; i++ {
		s.AddControl(ControlRecord{ID: uint64(i + 1), UserID: "u1", CreatedAt: base, Lang: "en"})
	}
	view := s.Control()
	var sink int
	allocs := testing.AllocsPerRun(100, func() {
		for i, n := 0, view.Len(); i < n; i++ {
			c := view.At(i)
			sink += c.Hashtags + len(c.Lang)
		}
	})
	if allocs > 0 {
		t.Errorf("ControlList.At allocated %.1f objects per scan, want 0", allocs)
	}
	_ = sink
}
