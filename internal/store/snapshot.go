package store

import (
	"time"

	"msgscope/internal/platform"
)

// Snapshot is a frozen, indexed view of the dataset, taken once after a
// study's collection completes. The paper derives every table and figure
// from one immutable 38-day dataset, so the report engine can exploit
// post-collection immutability aggressively: all slices here are shared
// (never copied per call) and pre-partitioned, letting experiments do
// O(their output) work instead of re-sorting the store's maps on each
// call.
//
// Contract: take the snapshot only after collection has stopped, and treat
// everything it exposes as read-only.
type Snapshot struct {
	Start time.Time
	Days  int

	// Flat record slices in collection order.
	Tweets   []TweetRecord
	Control  []ControlRecord
	Posts    []PostRecord
	Messages []MessageRecord

	// Groups and Users are sorted by platform then code/key, matching the
	// store's deterministic iteration order.
	Groups []*GroupRecord
	Users  []*UserRecord

	tweetsByPlat map[platform.Platform][]*TweetRecord
	msgsByPlat   map[platform.Platform][]*MessageRecord
	groupsByPlat map[platform.Platform][]*GroupRecord
	joinedByPlat map[platform.Platform][]*GroupRecord
	tweetsByDay  [][]*TweetRecord
	counts       map[platform.Platform]Counts
}

// Snapshot freezes the store into an indexed view of the study window
// [start, start+days). It holds all four family locks for the duration,
// so it sees a mutually consistent dataset even if stray writers linger;
// no store method ever holds two family locks, so acquiring all four here
// cannot deadlock.
func (s *Store) Snapshot(start time.Time, days int) *Snapshot {
	s.tweetMu.Lock()
	defer s.tweetMu.Unlock()
	s.groupMu.Lock()
	defer s.groupMu.Unlock()
	s.userMu.Lock()
	defer s.userMu.Unlock()
	s.msgMu.Lock()
	defer s.msgMu.Unlock()
	s.rebuildGroupsLocked()
	s.rebuildUsersLocked()

	sn := &Snapshot{
		Start:        start,
		Days:         days,
		Tweets:       s.tweets,
		Control:      s.control,
		Posts:        s.posts,
		Messages:     s.msgs,
		Groups:       s.sortedGroups,
		Users:        s.sortedUsers,
		tweetsByPlat: map[platform.Platform][]*TweetRecord{},
		msgsByPlat:   map[platform.Platform][]*MessageRecord{},
		groupsByPlat: s.groupsByPlat,
		joinedByPlat: map[platform.Platform][]*GroupRecord{},
		counts:       map[platform.Platform]Counts{},
	}
	if days > 0 {
		sn.tweetsByDay = make([][]*TweetRecord, days)
	}

	tweetUsers := map[platform.Platform]map[string]struct{}{}
	for i := range s.tweets {
		t := &s.tweets[i]
		sn.tweetsByPlat[t.Platform] = append(sn.tweetsByPlat[t.Platform], t)
		if d := int(t.CreatedAt.Sub(start) / (24 * time.Hour)); d >= 0 && d < days {
			sn.tweetsByDay[d] = append(sn.tweetsByDay[d], t)
		}
		set := tweetUsers[t.Platform]
		if set == nil {
			set = map[string]struct{}{}
			tweetUsers[t.Platform] = set
		}
		set[t.UserID] = struct{}{}
	}
	msgUsers := map[platform.Platform]map[uint64]struct{}{}
	for i := range s.msgs {
		m := &s.msgs[i]
		sn.msgsByPlat[m.Platform] = append(sn.msgsByPlat[m.Platform], m)
		set := msgUsers[m.Platform]
		if set == nil {
			set = map[uint64]struct{}{}
			msgUsers[m.Platform] = set
		}
		set[m.AuthorKey] = struct{}{}
	}
	for _, g := range sn.Groups {
		if g.Joined {
			sn.joinedByPlat[g.Platform] = append(sn.joinedByPlat[g.Platform], g)
		}
	}
	for _, p := range platform.All {
		c := Counts{
			Tweets:       len(sn.tweetsByPlat[p]),
			TweetUsers:   len(tweetUsers[p]),
			GroupURLs:    len(sn.groupsByPlat[p]),
			JoinedGroups: len(sn.joinedByPlat[p]),
			Messages:     len(sn.msgsByPlat[p]),
			MessageUsers: len(msgUsers[p]),
		}
		sn.counts[p] = c
	}
	return sn
}

// TweetsOf returns one platform's tweets, in collection order.
func (sn *Snapshot) TweetsOf(p platform.Platform) []*TweetRecord {
	return sn.tweetsByPlat[p]
}

// MessagesOf returns one platform's collected messages.
func (sn *Snapshot) MessagesOf(p platform.Platform) []*MessageRecord {
	return sn.msgsByPlat[p]
}

// GroupsOf returns one platform's groups, sorted by code.
func (sn *Snapshot) GroupsOf(p platform.Platform) []*GroupRecord {
	return sn.groupsByPlat[p]
}

// JoinedOf returns the joined groups of one platform, sorted by code.
func (sn *Snapshot) JoinedOf(p platform.Platform) []*GroupRecord {
	return sn.joinedByPlat[p]
}

// TweetsByDay returns the tweets bucketed by zero-based study day; tweets
// outside the window appear in no bucket.
func (sn *Snapshot) TweetsByDay() [][]*TweetRecord { return sn.tweetsByDay }

// CountsFor returns the precomputed Table 2 row of one platform.
func (sn *Snapshot) CountsFor(p platform.Platform) Counts { return sn.counts[p] }
