package store

import (
	"time"

	"msgscope/internal/platform"
)

// Snapshot is a frozen, indexed view of the dataset, taken once after a
// study's collection completes. The paper derives every table and figure
// from one immutable 38-day dataset, so the report engine can exploit
// post-collection immutability aggressively: the column views and index
// slices here are shared (never copied per call) and pre-partitioned,
// letting experiments do O(their output) work instead of re-sorting the
// store's maps on each call.
//
// The per-platform and per-day tweet/message partitions are []uint32 row
// indexes into the columnar families — 4 bytes per entry where the former
// layout kept an 8-byte pointer into a slice of structs.
//
// Contract: take the snapshot only after collection has stopped, and treat
// everything it exposes as read-only.
type Snapshot struct {
	Start time.Time
	Days  int

	// Flat family views in collection order.
	Tweets   TweetList
	Control  ControlList
	Posts    []PostRecord
	Messages MessageList

	// Groups and Users are sorted by platform then code/key, matching the
	// store's deterministic iteration order. Groups is a columnar view;
	// every per-platform and joined partition below shares its stripe
	// snapshots, so the whole group side of a Snapshot costs one set of
	// column headers plus the ref slices.
	Groups GroupList
	Users  []*UserRecord

	tweetsByPlat map[platform.Platform]TweetList
	msgsByPlat   map[platform.Platform]MessageList
	groupsByPlat map[platform.Platform]GroupList
	joinedByPlat map[platform.Platform]GroupList
	tweetsByDay  []TweetList
	counts       map[platform.Platform]Counts
}

// Snapshot freezes the store into an indexed view of the study window
// [start, start+days). It sees a mutually consistent dataset even if stray
// writers linger, by taking every lock in the store's documented total
// order — tweetMu, msgMu, then each striped family's cacheMu followed by
// its stripes in ascending index order — which no other multi-lock path
// contradicts, so it cannot deadlock.
func (s *Store) Snapshot(start time.Time, days int) *Snapshot {
	s.tweetMu.Lock()
	defer s.tweetMu.Unlock()
	s.msgMu.Lock()
	defer s.msgMu.Unlock()
	s.groups.lockAll()
	defer s.groups.unlockAll()
	s.users.lockAll()
	defer s.users.unlockAll()

	s.groups.rebuildLocked(true)
	s.users.rebuildLocked(true)
	// Compact scattered observation chains into group-major order while
	// every stripe is held, so the views below (and any later ones) serve
	// dense O(1)-addressable series.
	s.groups.compactAllLocked()
	groupViews := s.groups.viewsLocked(true)

	tweets := TweetList{c: s.tweets.view(), all: true}
	msgs := MessageList{c: s.msgs.view(), all: true}
	sn := &Snapshot{
		Start:        start,
		Days:         days,
		Tweets:       tweets,
		Control:      ControlList{c: s.control.view()},
		Posts:        s.posts,
		Messages:     msgs,
		Groups:       GroupList{views: groupViews, refs: s.groups.sorted},
		Users:        s.users.materializeLocked(true),
		tweetsByPlat: map[platform.Platform]TweetList{},
		msgsByPlat:   map[platform.Platform]MessageList{},
		groupsByPlat: map[platform.Platform]GroupList{},
		joinedByPlat: map[platform.Platform]GroupList{},
		counts:       map[platform.Platform]Counts{},
	}

	// Partition tweets by platform and study day in one pass over the
	// packed columns, counting distinct users by interned handle.
	platIdx := map[platform.Platform][]uint32{}
	dayIdx := make([][]uint32, days)
	tweetUsers := map[platform.Platform]map[uint32]struct{}{}
	startNano := timeToNano(start)
	const dayNanos = int64(24 * time.Hour)
	for i, n := 0, s.tweets.len(); i < n; i++ {
		p := platform.Platform(s.tweets.platAt(i))
		platIdx[p] = append(platIdx[p], uint32(i))
		if c := s.tweets.createdNano(i); c != zeroTimeNano {
			if d := int((c - startNano) / dayNanos); d >= 0 && d < days {
				dayIdx[d] = append(dayIdx[d], uint32(i))
			}
		}
		set := tweetUsers[p]
		if set == nil {
			set = map[uint32]struct{}{}
			tweetUsers[p] = set
		}
		set[s.tweets.userHandle(i)] = struct{}{}
	}
	for p, idx := range platIdx {
		sn.tweetsByPlat[p] = TweetList{c: tweets.c, idx: idx}
	}
	if days > 0 {
		sn.tweetsByDay = make([]TweetList, days)
		for d := range dayIdx {
			sn.tweetsByDay[d] = TweetList{c: tweets.c, idx: dayIdx[d]}
		}
	}

	msgIdx := map[platform.Platform][]uint32{}
	msgUsers := map[platform.Platform]map[uint64]struct{}{}
	for i, n := 0, s.msgs.len(); i < n; i++ {
		p := platform.Platform(s.msgs.platAt(i))
		msgIdx[p] = append(msgIdx[p], uint32(i))
		set := msgUsers[p]
		if set == nil {
			set = map[uint64]struct{}{}
			msgUsers[p] = set
		}
		set[s.msgs.authorKey(i)] = struct{}{}
	}
	for p, idx := range msgIdx {
		sn.msgsByPlat[p] = MessageList{c: msgs.c, idx: idx}
	}

	// The rebuild already partitioned the sorted refs by platform; the
	// partitions share groupViews with sn.Groups. Joined refs are gathered
	// off the flag column directly — no record materialization.
	joinedRefs := map[platform.Platform][]groupRef{}
	for p, refs := range s.groups.byPlat {
		sn.groupsByPlat[p] = GroupList{views: groupViews, refs: refs}
		for _, r := range refs {
			v := &groupViews[r>>stripeShift]
			if v.flags[uint32(r)&stripeMask]&gfJoined != 0 {
				joinedRefs[p] = append(joinedRefs[p], r)
			}
		}
	}
	for p, refs := range joinedRefs {
		sn.joinedByPlat[p] = GroupList{views: groupViews, refs: refs}
	}
	for _, p := range platform.All {
		sn.counts[p] = Counts{
			Tweets:       len(platIdx[p]),
			TweetUsers:   len(tweetUsers[p]),
			GroupURLs:    sn.groupsByPlat[p].Len(),
			JoinedGroups: sn.joinedByPlat[p].Len(),
			Messages:     len(msgIdx[p]),
			MessageUsers: len(msgUsers[p]),
		}
	}
	return sn
}

// TweetsOf returns one platform's tweets, in collection order.
func (sn *Snapshot) TweetsOf(p platform.Platform) TweetList {
	if l, ok := sn.tweetsByPlat[p]; ok {
		return l
	}
	return TweetList{c: sn.Tweets.c, idx: []uint32{}}
}

// MessagesOf returns one platform's collected messages.
func (sn *Snapshot) MessagesOf(p platform.Platform) MessageList {
	if l, ok := sn.msgsByPlat[p]; ok {
		return l
	}
	return MessageList{c: sn.Messages.c, idx: []uint32{}}
}

// GroupsOf returns one platform's groups, sorted by code. The zero
// GroupList of an absent platform has Len 0.
func (sn *Snapshot) GroupsOf(p platform.Platform) GroupList {
	return sn.groupsByPlat[p]
}

// JoinedOf returns the joined groups of one platform, sorted by code.
func (sn *Snapshot) JoinedOf(p platform.Platform) GroupList {
	return sn.joinedByPlat[p]
}

// TweetsByDay returns the tweets bucketed by zero-based study day; tweets
// outside the window appear in no bucket.
func (sn *Snapshot) TweetsByDay() []TweetList { return sn.tweetsByDay }

// CountsFor returns the precomputed Table 2 row of one platform.
func (sn *Snapshot) CountsFor(p platform.Platform) Counts { return sn.counts[p] }
