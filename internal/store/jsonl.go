package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"msgscope/internal/jsonx"
)

// WriteJSONL writes one JSON document per line. Record types with a
// hand-written jsonx codec (see codec.go) take the append-encoder path —
// same bytes, no reflection; everything else goes through encoding/json.
func WriteJSONL[T any](w io.Writer, items []T) error {
	bw := bufio.NewWriter(w)
	if _, ok := any((*T)(nil)).(jsonlCodec); ok {
		buf := jsonx.GetBuf()
		defer jsonx.PutBuf(buf)
		for i := range items {
			*buf = any(&items[i]).(jsonlCodec).appendJSON((*buf)[:0])
			*buf = append(*buf, '\n')
			if _, err := bw.Write(*buf); err != nil {
				return fmt.Errorf("store: encoding line %d: %w", i, err)
			}
		}
		return bw.Flush()
	}
	enc := json.NewEncoder(bw)
	for i := range items {
		if err := enc.Encode(items[i]); err != nil {
			return fmt.Errorf("store: encoding line %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads newline-delimited JSON documents, using the streaming
// jsonx parser for record types that carry a codec and encoding/json for
// the rest. Unknown object keys are skipped on both paths.
func ReadJSONL[T any](r io.Reader) ([]T, error) {
	var out []T
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	_, fast := any((*T)(nil)).(jsonlCodec)
	var dec jsonx.Dec
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var v T
		var err error
		if fast {
			dec.Reset(sc.Bytes())
			if err = any(&v).(jsonlCodec).parseJSON(&dec); err == nil {
				err = dec.End()
			}
		} else {
			err = json.Unmarshal(sc.Bytes(), &v)
		}
		if err != nil {
			return out, fmt.Errorf("store: decoding line %d: %w", line, err)
		}
		out = append(out, v)
	}
	return out, sc.Err()
}

// Save persists the dataset as JSONL files under dir (created as needed):
// tweets.jsonl, control.jsonl, groups.jsonl, messages.jsonl, users.jsonl.
func (s *Store) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := saveFile(filepath.Join(dir, "tweets.jsonl"), s.Tweets()); err != nil {
		return err
	}
	if err := saveFile(filepath.Join(dir, "control.jsonl"), s.Control()); err != nil {
		return err
	}
	if err := saveFile(filepath.Join(dir, "groups.jsonl"), s.Groups()); err != nil {
		return err
	}
	if err := saveFile(filepath.Join(dir, "messages.jsonl"), s.Messages()); err != nil {
		return err
	}
	if err := saveFile(filepath.Join(dir, "posts.jsonl"), s.Posts()); err != nil {
		return err
	}
	return saveFile(filepath.Join(dir, "users.jsonl"), s.Users())
}

func saveFile[T any](path string, items []T) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSONL(f, items); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a dataset previously written by Save.
func Load(dir string) (*Store, error) {
	s := New()
	tweets, err := loadFile[TweetRecord](filepath.Join(dir, "tweets.jsonl"))
	if err != nil {
		return nil, err
	}
	for _, t := range tweets {
		s.AddTweet(t)
	}
	control, err := loadFile[ControlRecord](filepath.Join(dir, "control.jsonl"))
	if err != nil {
		return nil, err
	}
	s.control = control
	groups, err := loadFile[*GroupRecord](filepath.Join(dir, "groups.jsonl"))
	if err != nil {
		return nil, err
	}
	// Group records carry derived fields (observations, join data), so
	// they replace the skeletons AddTweet built.
	for _, g := range groups {
		s.groups[groupKey{g.Platform, g.Code}] = g
	}
	msgs, err := loadFile[MessageRecord](filepath.Join(dir, "messages.jsonl"))
	if err != nil {
		return nil, err
	}
	s.msgs = msgs
	posts, err := loadFile[PostRecord](filepath.Join(dir, "posts.jsonl"))
	if err != nil {
		return nil, err
	}
	s.posts = posts
	users, err := loadFile[UserRecord](filepath.Join(dir, "users.jsonl"))
	if err != nil {
		return nil, err
	}
	for _, u := range users {
		cp := u
		s.users[userKey{u.Platform, u.Key}] = &cp
	}
	return s, nil
}

func loadFile[T any](path string) ([]T, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	return ReadJSONL[T](f)
}
