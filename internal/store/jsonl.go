package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"msgscope/internal/jsonx"
)

// WriteJSONL writes one JSON document per line. Record types with a
// hand-written jsonx codec (see codec.go) take the append-encoder path —
// same bytes, no reflection; everything else goes through encoding/json.
func WriteJSONL[T any](w io.Writer, items []T) error {
	bw := bufio.NewWriter(w)
	if _, ok := any((*T)(nil)).(jsonlCodec); ok {
		buf := jsonx.GetBuf()
		defer jsonx.PutBuf(buf)
		for i := range items {
			*buf = any(&items[i]).(jsonlCodec).appendJSON((*buf)[:0])
			*buf = append(*buf, '\n')
			if _, err := bw.Write(*buf); err != nil {
				return fmt.Errorf("store: encoding line %d: %w", i, err)
			}
		}
		return bw.Flush()
	}
	enc := json.NewEncoder(bw)
	for i := range items {
		if err := enc.Encode(items[i]); err != nil {
			return fmt.Errorf("store: encoding line %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// writeJSONLView streams n records through their jsonx codec without
// materializing a []T: enc is handed each index and the reusable buffer.
// Used by Save for the columnar families, whose list views reconstruct
// records on demand.
func writeJSONLView(w io.Writer, n int, enc func(i int, dst []byte) []byte) error {
	bw := bufio.NewWriter(w)
	buf := jsonx.GetBuf()
	defer jsonx.PutBuf(buf)
	for i := 0; i < n; i++ {
		*buf = enc(i, (*buf)[:0])
		*buf = append(*buf, '\n')
		if _, err := bw.Write(*buf); err != nil {
			return fmt.Errorf("store: encoding line %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads newline-delimited JSON documents, using the streaming
// jsonx parser for record types that carry a codec and encoding/json for
// the rest. Unknown object keys are skipped on both paths.
func ReadJSONL[T any](r io.Reader) ([]T, error) {
	var out []T
	err := streamJSONL(r, make([]T, jsonlBatchSize), func(batch []T) error {
		out = append(out, batch...)
		return nil
	})
	return out, err
}

// jsonlBatchSize is how many decoded records a streaming load buffers
// before flushing them into the store: large enough to amortize per-batch
// lock traffic, small enough that load memory stays O(batch), not O(file).
const jsonlBatchSize = 4096

// streamJSONL decodes newline-delimited JSON into the caller's batch
// buffer, invoking flush each time it fills (and once at EOF for the
// remainder). The batch backing array is reused across flushes — flush
// must not retain it — so decoding an arbitrarily large file needs only
// one batch of live decoder output at a time.
func streamJSONL[T any](r io.Reader, batch []T, flush func([]T) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line, k := 0, 0
	_, fast := any((*T)(nil)).(jsonlCodec)
	var dec jsonx.Dec
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var v T
		var err error
		if fast {
			dec.Reset(sc.Bytes())
			if err = any(&v).(jsonlCodec).parseJSON(&dec); err == nil {
				err = dec.End()
			}
		} else {
			err = json.Unmarshal(sc.Bytes(), &v)
		}
		if err != nil {
			return fmt.Errorf("store: decoding line %d: %w", line, err)
		}
		batch[k] = v
		k++
		if k == len(batch) {
			if err := flush(batch); err != nil {
				return err
			}
			k = 0
		}
	}
	if k > 0 {
		if err := flush(batch[:k]); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Save persists the dataset as JSONL files under dir (created as needed):
// tweets.jsonl, control.jsonl, groups.jsonl, messages.jsonl, posts.jsonl,
// users.jsonl. The columnar families are encoded straight from their list
// views, so Save never materializes a record slice.
func (s *Store) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tweets := s.Tweets()
	if err := saveView(filepath.Join(dir, "tweets.jsonl"), tweets.Len(), func(i int, dst []byte) []byte {
		t := tweets.At(i)
		return t.appendJSON(dst)
	}); err != nil {
		return err
	}
	control := s.Control()
	if err := saveView(filepath.Join(dir, "control.jsonl"), control.Len(), func(i int, dst []byte) []byte {
		c := control.At(i)
		return c.appendJSON(dst)
	}); err != nil {
		return err
	}
	// Groups have no hand-written codec; each wire record is materialized
	// from the columnar view and marshaled reflectively — the same
	// encoding/json path (and bytes) the former []*GroupRecord took.
	groups := s.Groups()
	var groupErr error
	if err := saveView(filepath.Join(dir, "groups.jsonl"), groups.Len(), func(i int, dst []byte) []byte {
		rec := groups.Record(i)
		b, err := json.Marshal(&rec)
		if err != nil && groupErr == nil {
			groupErr = err
		}
		return append(dst, b...)
	}); err != nil {
		return err
	}
	if groupErr != nil {
		return fmt.Errorf("store: encoding groups.jsonl: %w", groupErr)
	}
	msgs := s.Messages()
	if err := saveView(filepath.Join(dir, "messages.jsonl"), msgs.Len(), func(i int, dst []byte) []byte {
		m := msgs.At(i)
		return m.appendJSON(dst)
	}); err != nil {
		return err
	}
	if err := saveFile(filepath.Join(dir, "posts.jsonl"), s.Posts()); err != nil {
		return err
	}
	return saveFile(filepath.Join(dir, "users.jsonl"), s.Users())
}

// saveFile and saveView write through a temp file renamed into place, so
// a crash mid-save (or mid-analysis rewrite) can never leave a torn
// snapshot behind — readers see the old complete file or the new one.
func saveFile[T any](path string, items []T) error {
	return saveAtomic(path, func(f *os.File) error {
		return WriteJSONL(f, items)
	})
}

func saveView(path string, n int, enc func(i int, dst []byte) []byte) error {
	return saveAtomic(path, func(f *os.File) error {
		return writeJSONLView(f, n, enc)
	})
}

func saveAtomic(path string, write func(*os.File) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	werr := write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	return nil
}

// Load reads a dataset previously written by Save, streaming each file
// into the columnar store in jsonlBatchSize batches instead of
// materializing whole []T slices first.
func (s *Store) loadStreaming(dir string) error {
	// Tweets decode as TweetRecord (the on-disk type) and are wrapped into
	// one reusable ingest batch; canonical URLs live on the group records.
	ingest := make([]TweetIngest, jsonlBatchSize)
	err := loadFileStream(filepath.Join(dir, "tweets.jsonl"), make([]TweetRecord, jsonlBatchSize), func(batch []TweetRecord) error {
		for i := range batch {
			ingest[i] = TweetIngest{Tweet: batch[i]}
		}
		s.AddTweetBatch(ingest[:len(batch)])
		return nil
	})
	if err != nil {
		return err
	}
	err = loadFileStream(filepath.Join(dir, "control.jsonl"), make([]ControlRecord, jsonlBatchSize), func(batch []ControlRecord) error {
		s.AddControlBatch(batch)
		return nil
	})
	if err != nil {
		return err
	}
	// Group records carry derived fields (observations, join data), so
	// they replace the skeletons AddTweetBatch built.
	err = loadFileStream(filepath.Join(dir, "groups.jsonl"), make([]*GroupRecord, jsonlBatchSize), func(batch []*GroupRecord) error {
		for _, g := range batch {
			s.groups.put(g)
		}
		return nil
	})
	if err != nil {
		return err
	}
	err = loadFileStream(filepath.Join(dir, "messages.jsonl"), make([]MessageRecord, jsonlBatchSize), func(batch []MessageRecord) error {
		s.AddMessageBatch(batch)
		return nil
	})
	if err != nil {
		return err
	}
	// Posts append verbatim: their group-side effects (SeenSocial,
	// SocialPosts) are derived state the loaded group records already
	// carry, so replaying AddPost would double-count them. The dedup
	// index is still registered so post-load polling cannot re-ingest
	// an already-collected post.
	err = loadFileStream(filepath.Join(dir, "posts.jsonl"), make([]PostRecord, jsonlBatchSize), func(batch []PostRecord) error {
		s.tweetMu.Lock()
		for i := range batch {
			s.seenPosts.Put(batch[i].ID, 0)
		}
		s.posts = append(s.posts, batch...)
		s.tweetMu.Unlock()
		return nil
	})
	if err != nil {
		return err
	}
	// Each user appears once in the file, so upserting inserts verbatim
	// (Creator-only flags survive: the merge only clears Creator on a
	// second sighting).
	return loadFileStream(filepath.Join(dir, "users.jsonl"), make([]UserRecord, jsonlBatchSize), func(batch []UserRecord) error {
		s.UpsertUserBatch(batch)
		return nil
	})
}

// Load reads a dataset previously written by Save.
func Load(dir string) (*Store, error) {
	s := New()
	if err := s.loadStreaming(dir); err != nil {
		return nil, err
	}
	return s, nil
}

func loadFileStream[T any](path string, batch []T, flush func([]T) error) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	return streamJSONL(f, batch, flush)
}
