package store

import (
	"bytes"
	"encoding/json"
	"math/rand/v2"
	"reflect"
	"testing"
	"time"

	"msgscope/internal/platform"
)

// The hand-written codecs must be indistinguishable from encoding/json on
// the wire: these tests hold the reflective marshaller up as the
// differential oracle in both directions.

func codecTime(rng *rand.Rand) time.Time {
	t := time.Date(2020, 4, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(rng.Int64N(int64(90 * 24 * time.Hour))))
	switch rng.IntN(3) {
	case 0:
		t = t.Truncate(time.Second)
	case 1:
		t = t.Add(time.Duration(rng.Int64N(1e9)))
	}
	return t
}

// trickyStrings exercises the encoder's escaping: HTML characters,
// control characters, multi-byte runes, U+2028/29, invalid UTF-8.
var trickyStrings = []string{
	"", "plain", `with "quotes" and \backslash`, "tab\tnew\nline",
	"<script>&amp;</script>", "émoji \U0001F600 中文", "line sep ",
	"ctrl\x01\x1f", "bad\xffutf8", "ends high \xed",
}

func pick(rng *rand.Rand, ss []string) string { return ss[rng.IntN(len(ss))] }

func randTweet(rng *rand.Rand) TweetRecord {
	return TweetRecord{
		ID:        rng.Uint64(),
		UserID:    pick(rng, trickyStrings),
		CreatedAt: codecTime(rng),
		Lang:      pick(rng, []string{"en", "pt", "", "hi"}),
		Hashtags:  rng.IntN(5),
		Mentions:  rng.IntN(5),
		Retweet:   rng.IntN(2) == 0,
		Text:      pick(rng, trickyStrings),
		Platform:  platform.Platform(rng.IntN(4)),
		GroupCode: pick(rng, trickyStrings),
		Source:    TweetSource(rng.IntN(4)),
	}
}

func randControl(rng *rand.Rand) ControlRecord {
	return ControlRecord{
		ID:        rng.Uint64(),
		UserID:    pick(rng, trickyStrings),
		CreatedAt: codecTime(rng),
		Lang:      pick(rng, []string{"en", "es", ""}),
		Hashtags:  rng.IntN(5),
		Mentions:  rng.IntN(5),
		Retweet:   rng.IntN(2) == 0,
	}
}

func randMessage(rng *rand.Rand) MessageRecord {
	return MessageRecord{
		Platform:  platform.Platform(rng.IntN(4)),
		GroupCode: pick(rng, trickyStrings),
		AuthorKey: rng.Uint64(),
		SentAt:    codecTime(rng),
		Type:      platform.MessageType(rng.IntN(5)),
		Text:      pick(rng, trickyStrings), // "" exercises omitempty
	}
}

func randUser(rng *rand.Rand) UserRecord {
	u := UserRecord{
		Platform: platform.Platform(rng.IntN(4)),
		Key:      rng.Uint64(),
		Creator:  rng.IntN(2) == 0,
	}
	if rng.IntN(2) == 0 {
		u.PhoneHash = pick(rng, trickyStrings)
	}
	if rng.IntN(2) == 0 {
		u.Country = pick(rng, []string{"IN", "BR", "US"})
	}
	for i := rng.IntN(3); i > 0; i-- {
		u.Linked = append(u.Linked, pick(rng, trickyStrings))
	}
	return u
}

func randPost(rng *rand.Rand) PostRecord {
	return PostRecord{
		ID:        rng.Uint64(),
		Author:    pick(rng, trickyStrings),
		CreatedAt: codecTime(rng),
		Text:      pick(rng, trickyStrings),
		Platform:  platform.Platform(rng.IntN(4)),
		GroupCode: pick(rng, trickyStrings),
	}
}

// checkCodec verifies, for a batch of records: (1) WriteJSONL output is
// byte-identical to the pure encoding/json encoder, and (2) ReadJSONL of
// encoding/json output reproduces the records exactly.
func checkCodec[T any](t *testing.T, items []T) {
	t.Helper()
	var fast bytes.Buffer
	if err := WriteJSONL(&fast, items); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	var oracle bytes.Buffer
	enc := json.NewEncoder(&oracle)
	for i := range items {
		if err := enc.Encode(items[i]); err != nil {
			t.Fatalf("oracle encode: %v", err)
		}
	}
	if !bytes.Equal(fast.Bytes(), oracle.Bytes()) {
		fl, ol := bytes.Split(fast.Bytes(), []byte("\n")), bytes.Split(oracle.Bytes(), []byte("\n"))
		for i := range ol {
			if i >= len(fl) || !bytes.Equal(fl[i], ol[i]) {
				t.Fatalf("line %d differs:\n fast:   %s\n oracle: %s", i+1, fl[i], ol[i])
			}
		}
		t.Fatal("encodings differ in length only")
	}
	got, err := ReadJSONL[T](bytes.NewReader(oracle.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(got) != len(items) {
		t.Fatalf("ReadJSONL returned %d records, want %d", len(got), len(items))
	}
	for i := range items {
		if !reflect.DeepEqual(normTimes(got[i]), normTimes(items[i])) {
			t.Fatalf("record %d round-trips as\n %+v\nwant\n %+v", i, got[i], items[i])
		}
	}
}

// normTimes re-marshals through encoding/json so wall-clock monotonic
// bits (which no serializer preserves) don't fail DeepEqual.
func normTimes[T any](v T) T {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	var out T
	if err := json.Unmarshal(b, &out); err != nil {
		panic(err)
	}
	return out
}

func TestCodecsMatchEncodingJSON(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	const n = 300
	tweets := make([]TweetRecord, n)
	controls := make([]ControlRecord, n)
	msgs := make([]MessageRecord, n)
	users := make([]UserRecord, n)
	posts := make([]PostRecord, n)
	for i := 0; i < n; i++ {
		tweets[i] = randTweet(rng)
		controls[i] = randControl(rng)
		msgs[i] = randMessage(rng)
		users[i] = randUser(rng)
		posts[i] = randPost(rng)
	}
	t.Run("tweets", func(t *testing.T) { checkCodec(t, tweets) })
	t.Run("control", func(t *testing.T) { checkCodec(t, controls) })
	t.Run("messages", func(t *testing.T) { checkCodec(t, msgs) })
	t.Run("users", func(t *testing.T) { checkCodec(t, users) })
	t.Run("posts", func(t *testing.T) { checkCodec(t, posts) })
}

// TestCodecReadsOracleOutputWithUnknownKeys pins forward compatibility:
// like json.Unmarshal, the streaming parser must skip fields it does not
// know rather than erroring, so older binaries can read newer files.
func TestCodecReadsOracleOutputWithUnknownKeys(t *testing.T) {
	in := `{"id":7,"user_id":"u","created_at":"2020-04-01T12:00:00Z","future_field":{"a":[1,2,{"b":null}]},"lang":"en","hashtags":1,"mentions":0,"retweet":true,"text":"t","platform":1,"group_code":"g","source":1}` + "\n"
	got, err := ReadJSONL[TweetRecord](bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(got) != 1 || got[0].ID != 7 || !got[0].Retweet || got[0].Lang != "en" {
		t.Fatalf("unexpected decode: %+v", got)
	}
}

// TestCodecRejectsMalformedLine pins the error surface: a truncated line
// must produce a decode error naming the line, not a panic.
func TestCodecRejectsMalformedLine(t *testing.T) {
	in := `{"id":7,"user_id":"u"` + "\n"
	if _, err := ReadJSONL[TweetRecord](bytes.NewReader([]byte(in))); err == nil {
		t.Fatal("truncated line decoded without error")
	}
}
