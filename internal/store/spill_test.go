package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"msgscope/internal/platform"
)

// Spill correctness gates. The contract under test is DESIGN.md §16's:
// sealing rows into mmap-backed segments is invisible to every reader —
// the same ingest with and without a budget produces byte-identical saved
// output — and a checkpoint resume re-maps pinned segments instead of
// re-ingesting their rows, again byte-identically.

// spillCorpus ingests a deterministic, every-family workload into s:
// tweets (with a full duplicate re-ingest from "the other API"), control
// tweets, messages, observation series that die partway, group scalar
// mutations (canonical URLs, joins), users, and posts. chk, when non-nil,
// runs between ingest rounds — the spilled twin passes SpillCheck there,
// so rows freeze mid-corpus and later rounds read and mutate frozen rows.
func spillCorpus(t *testing.T, s *Store, chk func()) {
	t.Helper()
	if chk == nil {
		chk = func() {}
	}
	base := time.Date(2020, 4, 8, 0, 0, 0, 0, time.UTC)
	const nTweets = 4096

	rng := benchPCG(7)
	var textBuf []byte
	batch := make([]TweetIngest, 256)
	for done := 0; done < nTweets; done += len(batch) {
		textBuf = fillTweetBatch(batch, &rng, base, uint64(done+1), nTweets, textBuf)
		s.AddTweetBatch(batch)
		chk()
	}

	ctl := make([]ControlRecord, 256)
	for r := 0; r < 8; r++ {
		for i := range ctl {
			ctl[i] = ControlRecord{
				ID:        uint64(r*256 + i + 1),
				UserID:    "cu" + strconv.Itoa(i%97),
				CreatedAt: base.Add(time.Duration(r*256+i) * time.Second),
				Lang:      benchLangs[i%len(benchLangs)],
				Hashtags:  i % 3,
				Mentions:  i % 4,
				Retweet:   i%2 == 0,
			}
		}
		s.AddControlBatch(ctl)
		chk()
	}

	msgs := make([]MessageRecord, 512)
	mrng := benchPCG(11)
	for r := 0; r < 8; r++ {
		fillMessageBatch(msgs, &mrng, base, uint64(r*512), 4096)
		s.AddMessageBatch(msgs)
		chk()
	}

	// Observation series over the discovered groups, in the deterministic
	// sorted-group order; a third of the series end dead at sweep 3.
	type gkey struct {
		p    platform.Platform
		code string
	}
	var keys []gkey
	gl := s.Groups()
	for i, n := 0, gl.Len(); i < n; i++ {
		g := gl.At(i)
		keys = append(keys, gkey{g.Platform, g.Code})
	}
	for sweep := 0; sweep < 6; sweep++ {
		at := base.Add(time.Duration(sweep*24) * time.Hour)
		for i, k := range keys {
			if i%3 == 0 && sweep > 3 {
				continue // observed revoked at sweep 3; monitoring stopped
			}
			o := Observation{At: at, Alive: !(i%3 == 0 && sweep == 3)}
			if o.Alive {
				o.Title = "T " + k.code
				o.Members = 10 + i%50
				if k.p == platform.WhatsApp {
					o.CreatorPhoneH = HashPhone("+55" + strconv.Itoa(i))
					o.CreatorCountry = "BR"
				}
			}
			s.AddObservation(k.p, k.code, o)
		}
		chk()
	}

	// Group scalar mutations land in heap columns regardless of how much
	// of the observation chain is frozen.
	for i, k := range keys {
		if i%7 == 0 {
			s.SetCanonical(k.p, k.code, "https://chat.example/"+k.code)
		}
		if i%11 == 0 {
			s.MarkJoined(k.p, k.code, func(g *GroupRecord) {
				g.JoinedAt = base.Add(48 * time.Hour)
				g.MemberCount = 42
			})
		}
	}

	users := make([]UserRecord, 256)
	urng := benchPCG(13)
	fillUserBatch(users, &urng, 1024)
	s.UpsertUserBatch(users)
	s.AddPost(PostRecord{ID: 9001, Author: "a", CreatedAt: base, Platform: platform.Telegram, GroupCode: "grp1"})
	chk()

	// Finally the "other API" re-delivers every tweet: each hits the
	// duplicate path and merges its source bits — on sealed rows through
	// the copy-on-write mapping.
	drng := benchPCG(7)
	for done := 0; done < nTweets; done += len(batch) {
		textBuf = fillTweetBatch(batch, &drng, base, uint64(done+1), nTweets, textBuf)
		for i := range batch {
			batch[i].Tweet.Source = SourceStream
		}
		s.AddTweetBatch(batch)
	}
	chk()
}

// saveStore saves s into a fresh temp dir and returns it.
func saveStore(t *testing.T, s *Store) string {
	t.Helper()
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return dir
}

// compareSaveDirs requires the two saved datasets to match byte for byte.
func compareSaveDirs(t *testing.T, wantDir, gotDir string) {
	t.Helper()
	wantFiles, err := os.ReadDir(wantDir)
	if err != nil {
		t.Fatal(err)
	}
	gotFiles, err := os.ReadDir(gotDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantFiles) != len(gotFiles) {
		t.Fatalf("saved %d files, want %d", len(gotFiles), len(wantFiles))
	}
	for _, e := range wantFiles {
		want, err := os.ReadFile(filepath.Join(wantDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(gotDir, e.Name()))
		if err != nil {
			t.Fatalf("spilled store did not save %s: %v", e.Name(), err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s differs between all-RAM and spilled store (%d vs %d bytes)",
				e.Name(), len(want), len(got))
		}
	}
}

// TestSpilledStoreMatchesAllRAM is the tentpole differential: the same
// corpus ingested with a 1-byte budget (everything seals at every check,
// including mid-ingest message self-seals) saves byte-identically to the
// all-RAM twin.
func TestSpilledStoreMatchesAllRAM(t *testing.T) {
	plain := New()
	spillCorpus(t, plain, nil)

	sp := New()
	if err := sp.EnableSpill(SpillConfig{Dir: t.TempDir(), Budget: 1}); err != nil {
		t.Fatal(err)
	}
	spillCorpus(t, sp, func() {
		if err := sp.SpillCheck(); err != nil {
			t.Fatal(err)
		}
	})

	st := sp.SpillStats()
	if st.Segments == 0 {
		t.Fatal("corpus never spilled; the differential is vacuous")
	}
	if st.SegBytes == 0 {
		t.Error("segments recorded but zero bytes on disk")
	}
	t.Logf("spill stats: %d segments, %d bytes on disk, %d spillable / %d resident heap",
		st.Segments, st.SegBytes, st.SpillableHeapBytes, st.ResidentHeapBytes)

	compareSaveDirs(t, saveStore(t, plain), saveStore(t, sp))

	for _, p := range []platform.Platform{platform.WhatsApp, platform.Telegram, platform.Discord} {
		if got, want := sp.CountsFor(p), plain.CountsFor(p); got != want {
			t.Errorf("CountsFor(%v) = %+v, want %+v", p, got, want)
		}
	}
}

// TestSpillCheckpointResumeMatches covers the manifest interplay: a resume
// from the latest boundary re-maps the pinned segments and replays the log
// tail; a resume from an earlier boundary additionally deletes the
// segments sealed after it (orphans) and rolls the dataset back exactly.
func TestSpillCheckpointResumeMatches(t *testing.T) {
	ckDir := t.TempDir()
	cfg := SpillConfig{Dir: filepath.Join(ckDir, "segments"), Budget: 1}

	base := time.Date(2020, 4, 8, 0, 0, 0, 0, time.UTC)
	ingest := func(s *Store, round int) {
		rng := benchPCG(uint64(100 + round))
		var textBuf []byte
		batch := make([]TweetIngest, 256)
		textBuf = fillTweetBatch(batch, &rng, base, uint64(round*10000+1), 4096, textBuf)
		s.AddTweetBatch(batch)
		ctl := make([]ControlRecord, 128)
		for i := range ctl {
			ctl[i] = ControlRecord{ID: uint64(round*10000 + i + 1), UserID: "cu" + strconv.Itoa(i%31),
				CreatedAt: base.Add(time.Duration(i) * time.Second), Lang: benchLangs[i%len(benchLangs)]}
		}
		s.AddControlBatch(ctl)
		msgs := make([]MessageRecord, 256)
		mrng := benchPCG(uint64(200 + round))
		fillMessageBatch(msgs, &mrng, base, uint64(round*256), 4096)
		s.AddMessageBatch(msgs)
		gl := s.Groups()
		for i, n := 0, gl.Len(); i < n; i++ {
			g := gl.At(i)
			s.AddObservation(g.Platform, g.Code, Observation{
				At: base.Add(time.Duration(round*24) * time.Hour), Alive: true, Title: "T " + g.Code, Members: 5 + i%9,
			})
		}
	}

	s := New()
	if err := s.EnableSpill(cfg); err != nil {
		t.Fatal(err)
	}
	w, err := s.OpenCheckpointWriter(ckDir)
	if err != nil {
		t.Fatal(err)
	}
	ingest(s, 1)
	if err := s.SpillCheck(); err != nil {
		t.Fatal(err)
	}
	logs1, err := w.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	spill1 := s.SpillManifest()

	ingest(s, 2)
	if err := s.SpillCheck(); err != nil {
		t.Fatal(err)
	}
	logs2, err := w.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	spill2 := s.SpillManifest()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if len(spill2.Families) == 0 {
		t.Fatal("nothing pinned; the resume test is vacuous")
	}
	fullSave := saveStore(t, s)

	// Resume from the latest boundary: pinned segments re-map, logs replay.
	r2 := New()
	if err := r2.RestoreSpill(cfg, spill2); err != nil {
		t.Fatal(err)
	}
	if err := r2.LoadCheckpoint(ckDir, logs2); err != nil {
		t.Fatal(err)
	}
	if st := r2.SpillStats(); st.Segments == 0 {
		t.Fatal("resume mapped no segments")
	}
	compareSaveDirs(t, fullSave, saveStore(t, r2))

	// Roll back to the earlier boundary (as after a crash that lost the
	// second manifest write): round-2 segments are orphans and must go,
	// and the dataset must equal a round-1-only run. Destructive to the
	// logs (they are truncated to the pinned prefix), so this comes last.
	expect := New()
	ingest(expect, 1)
	r1 := New()
	if err := r1.RestoreSpill(cfg, spill1); err != nil {
		t.Fatal(err)
	}
	if err := r1.LoadCheckpoint(ckDir, logs1); err != nil {
		t.Fatal(err)
	}
	compareSaveDirs(t, saveStore(t, expect), saveStore(t, r1))

	kept := map[string]bool{}
	if spill1 != nil {
		for _, fam := range spill1.Families {
			for _, sg := range fam.Segments {
				kept[sg.Name] = true
			}
		}
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") && !kept[e.Name()] {
			t.Errorf("orphan segment %s survived the rollback restore", e.Name())
		}
	}
}

// TestRestoreSpillCleansStraysAndVerifiesPins covers the crash windows
// around a seal: leftover temp files and unpinned segments are deleted,
// and a pinned segment that does not match its manifest entry is rejected
// rather than silently mapped.
func TestRestoreSpillCleansStraysAndVerifiesPins(t *testing.T) {
	dir := t.TempDir()
	cfg := SpillConfig{Dir: dir, Budget: 1}
	s := New()
	if err := s.EnableSpill(cfg); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2020, 4, 8, 0, 0, 0, 0, time.UTC)
	rng := benchPCG(3)
	batch := make([]TweetIngest, 512)
	fillTweetBatch(batch, &rng, base, 1, 512, nil)
	s.AddTweetBatch(batch)
	if err := s.SpillCheck(); err != nil {
		t.Fatal(err)
	}
	m := s.SpillManifest()
	if len(m.Families[famTweets].Segments) == 0 {
		t.Fatal("no tweet segment sealed")
	}

	// A crash mid-seal leaves a temp file; a crash after a seal but before
	// the next manifest leaves an unpinned segment. Both must be cleaned.
	stray1 := filepath.Join(dir, "tweets-999998.seg")
	stray2 := filepath.Join(dir, ".tweets-999999.seg.tmp")
	for _, p := range []string{stray1, stray2} {
		if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	r := New()
	if err := r.RestoreSpill(cfg, m); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{stray1, stray2} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("stray file %s survived RestoreSpill", p)
		}
	}
	if got, want := r.Tweets().Len(), s.Tweets().Len(); got != want {
		t.Errorf("restored %d tweets from segments, want %d", got, want)
	}

	// Truncate the pinned file: the manifest byte count no longer matches.
	pin := m.Families[famTweets].Segments[0]
	path := filepath.Join(dir, pin.Name)
	if err := os.Truncate(path, pin.Bytes-1); err != nil {
		t.Fatal(err)
	}
	if err := New().RestoreSpill(cfg, m); err == nil {
		t.Fatal("RestoreSpill accepted a truncated pinned segment")
	}
}

// TestSpilledListAccessAllocFree pins the zero-alloc read contract across
// the tier boundary: At on rows served from a mapped segment allocates
// exactly as much as At on heap rows — nothing.
func TestSpilledListAccessAllocFree(t *testing.T) {
	s := New()
	if err := s.EnableSpill(SpillConfig{Dir: t.TempDir(), Budget: 1}); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2020, 4, 8, 0, 0, 0, 0, time.UTC)
	rng := benchPCG(5)
	batch := make([]TweetIngest, 512)
	fillTweetBatch(batch, &rng, base, 1, 512, nil)
	s.AddTweetBatch(batch)
	msgs := make([]MessageRecord, 512)
	mrng := benchPCG(6)
	fillMessageBatch(msgs, &mrng, base, 0, 512)
	s.AddMessageBatch(msgs)
	if err := s.SpillCheck(); err != nil {
		t.Fatal(err)
	}
	// A second, unsealed round so the lists straddle both tiers.
	fillTweetBatch(batch, &rng, base, 1000, 512, nil)
	s.AddTweetBatch(batch)

	tweets := s.Tweets()
	msgsL := s.Messages()
	var sink int
	allocs := testing.AllocsPerRun(50, func() {
		for i, n := 0, tweets.Len(); i < n; i++ {
			sink += len(tweets.At(i).Text)
		}
		for i, n := 0, msgsL.Len(); i < n; i++ {
			sink += int(msgsL.At(i).AuthorKey)
		}
	})
	if allocs > 0 {
		t.Errorf("list access over spilled rows allocated %.1f objects/op, want 0", allocs)
	}
	_ = sink
}

// TestPruneObservationsSealsDeadSeries exercises the eager path: once
// enough of the observation heap belongs to series that ended dead before
// the horizon, the chains seal without any budget pressure.
func TestPruneObservationsSealsDeadSeries(t *testing.T) {
	mk := func() (*Store, SpillConfig) {
		cfg := SpillConfig{Dir: t.TempDir(), Budget: 1 << 40, PruneMinRows: 64}
		s := New()
		if err := s.EnableSpill(cfg); err != nil {
			t.Fatal(err)
		}
		return s, cfg
	}
	s, _ := mk()
	plain := New()
	base := time.Date(2020, 4, 8, 0, 0, 0, 0, time.UTC)
	fill := func(s *Store) {
		for i := 0; i < 64; i++ {
			code := "g" + strconv.Itoa(i)
			s.AddTweet(TweetRecord{ID: uint64(i + 1), UserID: "u", CreatedAt: base,
				Platform: platform.Telegram, GroupCode: code, Source: SourceSearch})
			for sweep := 0; sweep < 4; sweep++ {
				// Three quarters of the series end dead at sweep 3.
				alive := sweep < 3 || i%4 == 0
				s.AddObservation(platform.Telegram, code, Observation{
					At: base.Add(time.Duration(sweep*24) * time.Hour), Alive: alive, Members: i,
				})
			}
		}
	}
	fill(s)
	fill(plain)

	// Horizon before the dead tails: nothing to prune yet.
	if err := s.PruneObservations(base); err != nil {
		t.Fatal(err)
	}
	if st := s.SpillStats(); st.Segments != 0 {
		t.Fatalf("pruned %d segments with nothing past the horizon", st.Segments)
	}
	// Horizon after them: the dead share (75%) crosses the quarter trigger.
	if err := s.PruneObservations(base.Add(10 * 24 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if st := s.SpillStats(); st.Segments == 0 {
		t.Fatal("prune did not seal despite 3/4 dead series")
	}
	compareSaveDirs(t, saveStore(t, plain), saveStore(t, s))
}
