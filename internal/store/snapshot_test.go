package store

import (
	"reflect"
	"testing"
	"time"

	"msgscope/internal/platform"
)

var snapStart = time.Date(2020, 4, 8, 0, 0, 0, 0, time.UTC)

func buildSnapshotStore() *Store {
	s := New()
	at := func(day, h int) time.Time { return snapStart.Add(time.Duration(day*24+h) * time.Hour) }
	s.AddTweet(TweetRecord{ID: 1, UserID: "u1", CreatedAt: at(0, 3), Platform: platform.WhatsApp, GroupCode: "wa1"})
	s.AddTweet(TweetRecord{ID: 2, UserID: "u1", CreatedAt: at(1, 4), Platform: platform.WhatsApp, GroupCode: "wa2"})
	s.AddTweet(TweetRecord{ID: 3, UserID: "u2", CreatedAt: at(1, 5), Platform: platform.Telegram, GroupCode: "tg1"})
	s.AddTweet(TweetRecord{ID: 4, UserID: "u3", CreatedAt: at(9, 1), Platform: platform.Discord, GroupCode: "dc1"}) // outside 3-day window
	s.AddControl(ControlRecord{ID: 9, UserID: "c1", CreatedAt: at(0, 1)})
	s.MarkJoined(platform.WhatsApp, "wa1", func(g *GroupRecord) { g.MemberCount = 10 })
	s.AddMessage(MessageRecord{Platform: platform.WhatsApp, GroupCode: "wa1", AuthorKey: 7, SentAt: at(1, 1), Type: platform.Text})
	s.AddMessage(MessageRecord{Platform: platform.WhatsApp, GroupCode: "wa1", AuthorKey: 8, SentAt: at(1, 2), Type: platform.Text})
	s.UpsertUser(UserRecord{Platform: platform.WhatsApp, Key: 7, PhoneHash: "h7"})
	s.UpsertUser(UserRecord{Platform: platform.WhatsApp, Key: 8, PhoneHash: "h8"})
	return s
}

func TestSnapshotMatchesStore(t *testing.T) {
	s := buildSnapshotStore()
	sn := s.Snapshot(snapStart, 3)

	if sn.Tweets.Len() != 4 || sn.Control.Len() != 1 || sn.Messages.Len() != 2 {
		t.Fatalf("flat slices wrong: %d tweets %d control %d msgs",
			sn.Tweets.Len(), sn.Control.Len(), sn.Messages.Len())
	}
	groups := s.Groups()
	if sn.Groups.Len() != groups.Len() {
		t.Fatalf("snapshot has %d groups, store %d", sn.Groups.Len(), groups.Len())
	}
	for i := 0; i < groups.Len(); i++ {
		if !reflect.DeepEqual(sn.Groups.Record(i), groups.Record(i)) {
			t.Fatalf("group order diverges at %d", i)
		}
	}
	for _, p := range platform.All {
		want := s.GroupsOf(p)
		got := sn.GroupsOf(p)
		if want.Len() != got.Len() {
			t.Fatalf("%v: GroupsOf %d vs %d", p, got.Len(), want.Len())
		}
		for i := 0; i < want.Len(); i++ {
			if !reflect.DeepEqual(want.Record(i), got.Record(i)) {
				t.Fatalf("%v: GroupsOf order diverges at %d", p, i)
			}
		}
		if sn.CountsFor(p) != s.CountsFor(p) {
			t.Fatalf("%v: counts %+v vs %+v", p, sn.CountsFor(p), s.CountsFor(p))
		}
	}
	if n := sn.JoinedOf(platform.WhatsApp).Len(); n != 1 {
		t.Fatalf("joined WhatsApp groups = %d, want 1", n)
	}
	if n := sn.JoinedOf(platform.Discord).Len(); n != 0 {
		t.Fatalf("joined Discord groups = %d, want 0", n)
	}
	var inPlat int
	for _, p := range platform.All {
		inPlat += sn.TweetsOf(p).Len()
	}
	if inPlat != sn.Tweets.Len() {
		t.Fatalf("per-platform tweet partitions cover %d of %d", inPlat, sn.Tweets.Len())
	}
}

func TestSnapshotDayBuckets(t *testing.T) {
	sn := buildSnapshotStore().Snapshot(snapStart, 3)
	buckets := sn.TweetsByDay()
	if len(buckets) != 3 {
		t.Fatalf("%d buckets, want 3", len(buckets))
	}
	if buckets[0].Len() != 1 || buckets[1].Len() != 2 || buckets[2].Len() != 0 {
		t.Fatalf("bucket sizes %d/%d/%d, want 1/2/0",
			buckets[0].Len(), buckets[1].Len(), buckets[2].Len())
	}
	// The day-9 Discord tweet is outside the window: present in the flat
	// view, absent from every bucket.
	var bucketed int
	for _, b := range buckets {
		bucketed += b.Len()
	}
	if bucketed != 3 {
		t.Fatalf("bucketed %d tweets, want 3 (one outside window)", bucketed)
	}
}

func TestGroupRecordsAreCallerOwned(t *testing.T) {
	s := buildSnapshotStore()
	s.AddObservation(platform.WhatsApp, "wa1", Observation{At: snapStart, Alive: true, Members: 5})

	// Record materializes a fresh observation slice each call: a caller may
	// scribble on it without disturbing the store.
	list := s.GroupsOf(platform.WhatsApp)
	var idx = -1
	for i := 0; i < list.Len(); i++ {
		if list.At(i).Code == "wa1" {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("wa1 missing")
	}
	rec := list.Record(idx)
	if len(rec.Observations) != 1 {
		t.Fatalf("wa1 has %d observations, want 1", len(rec.Observations))
	}
	rec.Observations[0].Members = 999
	if again := list.Record(idx); again.Observations[0].Members != 5 {
		t.Fatalf("caller mutation leaked into the store: %+v", again.Observations[0])
	}
	if g, _ := s.Group(platform.WhatsApp, "wa1"); g.Observations[0].Members != 5 {
		t.Fatalf("caller mutation leaked into the store: %+v", g.Observations[0])
	}

	// Where carves a sub-view with its own ref slice; reordering the source
	// list's records is impossible (views are read-only), and a second
	// Groups() call serves the same deterministic order.
	a, b := s.Groups(), s.Groups()
	if a.Len() != b.Len() {
		t.Fatal("group view length unstable")
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i).Code != b.At(i).Code {
			t.Fatalf("group view order unstable at %d", i)
		}
	}
}

func TestGroupIndexInvalidation(t *testing.T) {
	s := buildSnapshotStore()
	before := s.GroupsOf(platform.Telegram).Len()
	s.AddTweet(TweetRecord{ID: 99, UserID: "u9", CreatedAt: snapStart, Platform: platform.Telegram, GroupCode: "tg-new"})
	after := s.GroupsOf(platform.Telegram)
	if after.Len() != before+1 {
		t.Fatalf("index stale after new group: %d, want %d", after.Len(), before+1)
	}
	u := len(s.Users())
	s.UpsertUser(UserRecord{Platform: platform.Discord, Key: 42})
	if len(s.Users()) != u+1 {
		t.Fatal("user index stale after upsert")
	}
}
