package store

import (
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"msgscope/internal/ids"
	"msgscope/internal/platform"
)

// Columnar (struct-of-arrays) layout for the group family and its daily
// observation series — the last two heap-resident record shapes after the
// tweet/message/user migration (columnar.go, stripes.go). A pointer-era
// GroupRecord cost 256 bytes plus a per-group []Observation whose elements
// weighed ~150 bytes each with their own string allocations; at a 38-day
// horizon observations outnumber groups ~38:1, so they dominate retained
// heap. Here each stripe keeps one set of group columns and one
// append-only set of observation columns: strings interned to uint32
// handles through a per-stripe ids.Table, times as int64 UnixNano with
// the zero sentinel, bools packed into one flag byte.
//
// Observation addressing: probes arrive interleaved across a stripe's
// groups (the daily sweep visits every group once per day), so a group's
// observations are not naturally contiguous. Appends therefore chain rows
// through a next column (each link set once, from the previous tail), and
// Snapshot compacts every scattered stripe into group-major order — after
// which each group's series is one dense (first, count) range and random
// access is O(1). Chain indexes are stored +1 so zero means "none",
// keeping the zero value of a fresh column row meaningful.
const (
	gfSeenTwitter = uint8(1 << iota)
	gfSeenSocial
	gfJoined
	gfHiddenMembers
	gfIsChannel
	gfDeferred
)

// Observation flag bits.
const (
	ofAlive = uint8(1 << iota)
	ofIsChannel
)

// obsCols holds one stripe's observations, one slice per Observation
// field plus the intra-group chain. ~45 bytes/row against ~150 for the
// former []Observation elements. Like the tweet/message families
// (columnar.go), rows [0, frozen) live in sealed mmap-backed segments and
// the heap slices hold the hot tail, indexed by i-frozen; row numbering is
// global and chain links keep working across a seal because links are
// row+1 regardless of which tier the row lives in.
type obsCols struct {
	segs   []obsSeg
	frozen int

	at        []int64
	createdAt []int64
	title     []uint32
	phoneH    []uint32
	country   []uint32
	creator   []uint32
	members   []int32
	online    []int32
	flags     []uint8
	next      []uint32 // row+1 of the group's next observation; 0 = end
}

func (c *obsCols) total() int { return c.frozen + len(c.at) }

func (c *obsCols) seg(i int) (*obsSeg, int) {
	k := segLocate(len(c.segs), func(k int) int { return c.segs[k].start + c.segs[k].n }, i)
	s := &c.segs[k]
	return s, i - s.start
}

func (c *obsCols) nextAt(i int) uint32 {
	if i >= c.frozen {
		return c.next[i-c.frozen]
	}
	s, j := c.seg(i)
	return s.next[j]
}

// setNext welds row i's chain link. Frozen rows write their private
// (copy-on-write) mapping: a chain whose tail was sealed keeps growing
// into the heap without touching the file.
func (c *obsCols) setNext(i int, v uint32) {
	if i >= c.frozen {
		c.next[i-c.frozen] = v
		return
	}
	s, j := c.seg(i)
	s.next[j] = v
}

func (c *obsCols) atNano(i int) int64 {
	if i >= c.frozen {
		return c.at[i-c.frozen]
	}
	s, j := c.seg(i)
	return s.at[j]
}

func (c *obsCols) createdNanoAt(i int) int64 {
	if i >= c.frozen {
		return c.createdAt[i-c.frozen]
	}
	s, j := c.seg(i)
	return s.createdAt[j]
}

func (c *obsCols) titleAt(i int) uint32 {
	if i >= c.frozen {
		return c.title[i-c.frozen]
	}
	s, j := c.seg(i)
	return s.title[j]
}

func (c *obsCols) creatorAt(i int) uint32 {
	if i >= c.frozen {
		return c.creator[i-c.frozen]
	}
	s, j := c.seg(i)
	return s.creator[j]
}

func (c *obsCols) countryAt(i int) uint32 {
	if i >= c.frozen {
		return c.country[i-c.frozen]
	}
	s, j := c.seg(i)
	return s.country[j]
}

func (c *obsCols) flagsAt(i int) uint8 {
	if i >= c.frozen {
		return c.flags[i-c.frozen]
	}
	s, j := c.seg(i)
	return s.flags[j]
}

func (c *obsCols) heapBytes() int64 {
	return sliceBytes(c.at) + sliceBytes(c.createdAt) + sliceBytes(c.title) +
		sliceBytes(c.phoneH) + sliceBytes(c.country) + sliceBytes(c.creator) +
		sliceBytes(c.members) + sliceBytes(c.online) + sliceBytes(c.flags) +
		sliceBytes(c.next)
}

func (c *obsCols) append(o *Observation, tab *ids.Table) {
	c.at = append(c.at, timeToNano(o.At))
	c.createdAt = append(c.createdAt, timeToNano(o.CreatedAt))
	c.title = append(c.title, tab.Handle(o.Title))
	c.phoneH = append(c.phoneH, tab.Handle(o.CreatorPhoneH))
	c.country = append(c.country, tab.Handle(o.CreatorCountry))
	c.creator = append(c.creator, tab.Handle(o.CreatorKey))
	c.members = append(c.members, int32(o.Members))
	c.online = append(c.online, int32(o.Online))
	var f uint8
	if o.Alive {
		f |= ofAlive
	}
	if o.IsChannel {
		f |= ofIsChannel
	}
	c.flags = append(c.flags, f)
	c.next = append(c.next, 0)
}

func (c *obsCols) recordAt(i uint32, tab *ids.Table) Observation {
	if int(i) >= c.frozen {
		j := int(i) - c.frozen
		f := c.flags[j]
		return Observation{
			At:             nanoToTime(c.at[j]),
			Alive:          f&ofAlive != 0,
			Title:          tab.Lookup(c.title[j]),
			Members:        int(c.members[j]),
			Online:         int(c.online[j]),
			IsChannel:      f&ofIsChannel != 0,
			CreatorPhoneH:  tab.Lookup(c.phoneH[j]),
			CreatorCountry: tab.Lookup(c.country[j]),
			CreatorKey:     tab.Lookup(c.creator[j]),
			CreatedAt:      nanoToTime(c.createdAt[j]),
		}
	}
	s, j := c.seg(int(i))
	f := s.flags[j]
	return Observation{
		At:             nanoToTime(s.at[j]),
		Alive:          f&ofAlive != 0,
		Title:          tab.Lookup(s.title[j]),
		Members:        int(s.members[j]),
		Online:         int(s.online[j]),
		IsChannel:      f&ofIsChannel != 0,
		CreatorPhoneH:  tab.Lookup(s.phoneH[j]),
		CreatorCountry: tab.Lookup(s.country[j]),
		CreatorKey:     tab.Lookup(s.creator[j]),
		CreatedAt:      nanoToTime(s.createdAt[j]),
	}
}

// view returns length-trimmed header copies, safe to read after the
// stripe lock is released: rows [0, n) are fully written before n is
// observed under the lock, and compaction swaps in fresh slices rather
// than mutating the ones a view references. The one exception is the
// next column — a later append sets the link on what was the tail row —
// so chain walks from a view must treat links past n as end-of-chain.
func (c *obsCols) view() obsCols {
	n := len(c.at)
	return obsCols{
		segs: slices.Clone(c.segs), frozen: c.frozen,
		at: c.at[:n], createdAt: c.createdAt[:n],
		title: c.title[:n], phoneH: c.phoneH[:n],
		country: c.country[:n], creator: c.creator[:n],
		members: c.members[:n], online: c.online[:n],
		flags: c.flags[:n], next: c.next[:n],
	}
}

// groupStripe holds one stripe's groups and their observations in
// columnar form. All handles resolve through the stripe's own tab
// (handle 0 is ""); titles, creator keys, countries, and phone hashes
// repeat heavily across a group's daily series, so interning them
// collapses the series' string weight to one copy per distinct value.
type groupStripe struct {
	mu sync.Mutex
	m  map[groupKey]uint32 // key -> row

	plat        []uint8
	flags       []uint8
	code        []uint32
	canonical   []uint32
	creatorKey  []uint32
	deferReason []uint32
	firstSeen   []int64
	lastSeen    []int64
	joinedAt    []int64
	createdAt   []int64
	tweets      []int32
	socialPosts []int32
	members     []int32
	channels    []int32

	// Observation chain anchors, row+1 encoded (0 = no observations).
	obsHead  []uint32
	obsTail  []uint32
	obsCount []uint32

	obs obsCols
	// obsScattered is set when an append lands away from its group's
	// previous tail (an interleaving sweep); Snapshot compacts such
	// stripes into group-major order.
	obsScattered bool

	tab *ids.Table
}

func (st *groupStripe) len() int { return len(st.plat) }

// appendLocked claims the next row with zero-valued columns for (p, code).
// Caller holds st.mu and fills first/last-seen afterwards.
func (st *groupStripe) appendLocked(p platform.Platform, code string) uint32 {
	row := uint32(st.len())
	st.plat = append(st.plat, uint8(p))
	st.flags = append(st.flags, 0)
	st.code = append(st.code, st.tab.Handle(code))
	st.canonical = append(st.canonical, 0)
	st.creatorKey = append(st.creatorKey, 0)
	st.deferReason = append(st.deferReason, 0)
	st.firstSeen = append(st.firstSeen, zeroTimeNano)
	st.lastSeen = append(st.lastSeen, zeroTimeNano)
	st.joinedAt = append(st.joinedAt, zeroTimeNano)
	st.createdAt = append(st.createdAt, zeroTimeNano)
	st.tweets = append(st.tweets, 0)
	st.socialPosts = append(st.socialPosts, 0)
	st.members = append(st.members, 0)
	st.channels = append(st.channels, 0)
	st.obsHead = append(st.obsHead, 0)
	st.obsTail = append(st.obsTail, 0)
	st.obsCount = append(st.obsCount, 0)
	return row
}

// appendObsLocked links one observation onto row's chain. Caller holds
// st.mu.
func (st *groupStripe) appendObsLocked(row uint32, o *Observation) {
	n := uint32(st.obs.total())
	st.obs.append(o, st.tab)
	if st.obsHead[row] == 0 {
		st.obsHead[row] = n + 1
	} else {
		if st.obsTail[row] != n {
			st.obsScattered = true
		}
		st.obs.setNext(int(st.obsTail[row]-1), n+1)
	}
	st.obsTail[row] = n + 1
	st.obsCount[row]++
}

// scalarsLocked materializes row's GroupRecord without its observation
// series (Observations stays nil); the series lives in the obs columns
// and is read through ObsList. Caller holds st.mu (or a view does the
// equivalent through groupStripeView.at).
func (st *groupStripe) scalarsLocked(row uint32) GroupRecord {
	f := st.flags[row]
	return GroupRecord{
		Platform:      platform.Platform(st.plat[row]),
		Code:          st.tab.Lookup(st.code[row]),
		Canonical:     st.tab.Lookup(st.canonical[row]),
		FirstSeen:     nanoToTime(st.firstSeen[row]),
		LastSeen:      nanoToTime(st.lastSeen[row]),
		Tweets:        int(st.tweets[row]),
		SeenTwitter:   f&gfSeenTwitter != 0,
		SeenSocial:    f&gfSeenSocial != 0,
		SocialPosts:   int(st.socialPosts[row]),
		Joined:        f&gfJoined != 0,
		JoinedAt:      nanoToTime(st.joinedAt[row]),
		CreatedAt:     nanoToTime(st.createdAt[row]),
		HiddenMembers: f&gfHiddenMembers != 0,
		IsChannel:     f&gfIsChannel != 0,
		Channels:      int(st.channels[row]),
		MemberCount:   int(st.members[row]),
		CreatorKey:    st.tab.Lookup(st.creatorKey[row]),
		Deferred:      f&gfDeferred != 0,
		DeferReason:   st.tab.Lookup(st.deferReason[row]),
	}
}

// storeScalarsLocked writes g's scalar fields back into row's columns.
// Platform and Code are identity (the map key) and are not rewritten;
// Observations are not touched — mutation closures only ever set scalars,
// and the observation path goes through appendObsLocked. Caller holds
// st.mu.
func (st *groupStripe) storeScalarsLocked(row uint32, g *GroupRecord) {
	var f uint8
	if g.SeenTwitter {
		f |= gfSeenTwitter
	}
	if g.SeenSocial {
		f |= gfSeenSocial
	}
	if g.Joined {
		f |= gfJoined
	}
	if g.HiddenMembers {
		f |= gfHiddenMembers
	}
	if g.IsChannel {
		f |= gfIsChannel
	}
	if g.Deferred {
		f |= gfDeferred
	}
	st.flags[row] = f
	st.canonical[row] = st.tab.Handle(g.Canonical)
	st.creatorKey[row] = st.tab.Handle(g.CreatorKey)
	st.deferReason[row] = st.tab.Handle(g.DeferReason)
	st.firstSeen[row] = timeToNano(g.FirstSeen)
	st.lastSeen[row] = timeToNano(g.LastSeen)
	st.joinedAt[row] = timeToNano(g.JoinedAt)
	st.createdAt[row] = timeToNano(g.CreatedAt)
	st.tweets[row] = int32(g.Tweets)
	st.socialPosts[row] = int32(g.SocialPosts)
	st.members[row] = int32(g.MemberCount)
	st.channels[row] = int32(g.Channels)
}

// scalarHeapBytes is the stripe's group scalar-column footprint — part of
// the resident floor SpillStats reports (every sweep touches every group,
// so these never spill). Caller holds st.mu.
func (st *groupStripe) scalarHeapBytes() int64 {
	return sliceBytes(st.plat) + sliceBytes(st.flags) + sliceBytes(st.code) +
		sliceBytes(st.canonical) + sliceBytes(st.creatorKey) + sliceBytes(st.deferReason) +
		sliceBytes(st.firstSeen) + sliceBytes(st.lastSeen) + sliceBytes(st.joinedAt) +
		sliceBytes(st.createdAt) + sliceBytes(st.tweets) + sliceBytes(st.socialPosts) +
		sliceBytes(st.members) + sliceBytes(st.channels) +
		sliceBytes(st.obsHead) + sliceBytes(st.obsTail) + sliceBytes(st.obsCount)
}

// compactLocked rewrites the stripe's observation columns into group-major
// order, making every group's series one dense (first, count) range, and
// drops rows orphaned by put-replacement. Fresh slices are allocated so
// views taken earlier keep reading their own consistent arrays. Caller
// holds st.mu.
func (st *groupStripe) compactLocked() {
	if !st.obsScattered {
		return
	}
	// Sealed rows cannot be renumbered: chain links from other frozen rows
	// point at them by global row, dedup-free anchors (obsHead/obsTail)
	// span both tiers, and the segment file is immutable. A spilled stripe
	// therefore keeps its scattered chains and ObsList serves them by walk
	// — the random-access upgrade is a heap-only luxury.
	if len(st.obs.segs) > 0 {
		return
	}
	old := st.obs
	n := len(old.at)
	fresh := obsCols{
		at:        make([]int64, 0, n),
		createdAt: make([]int64, 0, n),
		title:     make([]uint32, 0, n),
		phoneH:    make([]uint32, 0, n),
		country:   make([]uint32, 0, n),
		creator:   make([]uint32, 0, n),
		members:   make([]int32, 0, n),
		online:    make([]int32, 0, n),
		flags:     make([]uint8, 0, n),
		next:      make([]uint32, 0, n),
	}
	for row := range st.obsHead {
		if st.obsHead[row] == 0 {
			continue
		}
		newHead := uint32(len(fresh.at)) + 1
		for i := st.obsHead[row]; i != 0; i = old.next[i-1] {
			j := i - 1
			fresh.at = append(fresh.at, old.at[j])
			fresh.createdAt = append(fresh.createdAt, old.createdAt[j])
			fresh.title = append(fresh.title, old.title[j])
			fresh.phoneH = append(fresh.phoneH, old.phoneH[j])
			fresh.country = append(fresh.country, old.country[j])
			fresh.creator = append(fresh.creator, old.creator[j])
			fresh.members = append(fresh.members, old.members[j])
			fresh.online = append(fresh.online, old.online[j])
			fresh.flags = append(fresh.flags, old.flags[j])
			fresh.next = append(fresh.next, uint32(len(fresh.next))+2)
		}
		fresh.next[len(fresh.next)-1] = 0
		st.obsHead[row] = newHead
		st.obsTail[row] = uint32(len(fresh.at))
	}
	st.obs = fresh
	st.obsScattered = false
}

// groupTable is the striped, columnar group family.
type groupTable struct {
	stripes [numStripes]groupStripe

	cacheMu sync.Mutex
	dirty   atomic.Bool
	sorted  []groupRef
	// byPlat partitions sorted (which is ordered by platform, then code)
	// into contiguous subslices, one per platform.
	byPlat map[platform.Platform][]groupRef
}

func newGroupTable() *groupTable {
	// Stripes initialize lazily on first insert: an eager 64-stripe setup
	// costs ~1.2MB up front (each ids.Table's first intern claims a full
	// 16KB string block), a fixed tax every store pays even when the
	// group family stays empty — measurable against the message and user
	// families' liveB/rec gates at test scale.
	return &groupTable{}
}

// initLocked sets up a stripe's key map and interning table on first
// insert. Caller holds st.mu. Read paths never need this: a nil key map
// looks up as not-found, and the interning table is only dereferenced
// for rows that exist.
func (st *groupStripe) initLocked() {
	if st.m == nil {
		st.m = map[groupKey]uint32{}
		st.tab = ids.NewTable()
		st.tab.Handle("") // handle 0 is the empty string
	}
}

func (gt *groupTable) stripeFor(p platform.Platform, code string) (uint32, *groupStripe) {
	i := stripeHash(code, p)
	return i, &gt.stripes[i]
}

// upsertLocked returns the row for (p, code), creating it on first sight
// and widening its first/last-seen window. Caller holds st.mu.
func (gt *groupTable) upsertLocked(st *groupStripe, p platform.Platform, code string, at time.Time) (row uint32, isNew bool) {
	st.initLocked()
	k := groupKey{p, code}
	n := timeToNano(at)
	row, ok := st.m[k]
	if !ok {
		row = st.appendLocked(p, code)
		st.m[k] = row
		st.firstSeen[row], st.lastSeen[row] = n, n
		gt.dirty.Store(true)
		return row, true
	}
	// The sentinel is MinInt64, so these compare exactly like
	// at.Before(FirstSeen) / at.After(LastSeen) did, zero times included.
	if n < st.firstSeen[row] {
		st.firstSeen[row] = n
	}
	if n > st.lastSeen[row] {
		st.lastSeen[row] = n
	}
	return row, isNew
}

// lookup returns the full record for a key, including its materialized
// observation series.
func (gt *groupTable) lookup(p platform.Platform, code string) (GroupRecord, bool) {
	_, st := gt.stripeFor(p, code)
	st.mu.Lock()
	defer st.mu.Unlock()
	row, ok := st.m[groupKey{p, code}]
	if !ok {
		return GroupRecord{}, false
	}
	g := st.scalarsLocked(row)
	if c := st.obsCount[row]; c > 0 {
		g.Observations = make([]Observation, 0, c)
		for i := st.obsHead[row]; i != 0; i = st.obs.nextAt(int(i - 1)) {
			g.Observations = append(g.Observations, st.obs.recordAt(i-1, st.tab))
		}
	}
	return g, true
}

// with materializes the scalar record for a key, runs fn on it under the
// stripe lock, and writes the scalars back; unknown keys are a no-op. The
// record handed to fn carries no Observations — series access and append
// go through ObsList and appendObsLocked.
func (gt *groupTable) with(p platform.Platform, code string, fn func(*GroupRecord)) {
	_, st := gt.stripeFor(p, code)
	st.mu.Lock()
	if row, ok := st.m[groupKey{p, code}]; ok {
		g := st.scalarsLocked(row)
		fn(&g)
		st.storeScalarsLocked(row, &g)
	}
	st.mu.Unlock()
}

// put replaces (or creates) the record for g's key with *g, including its
// observation series — the Load path installing authoritative saved
// records over tweet-built skeletons. Observations a previous put chained
// for the same key are orphaned and reclaimed by the next compaction.
func (gt *groupTable) put(g *GroupRecord) {
	_, st := gt.stripeFor(g.Platform, g.Code)
	st.mu.Lock()
	st.initLocked()
	k := groupKey{g.Platform, g.Code}
	row, ok := st.m[k]
	if !ok {
		row = st.appendLocked(g.Platform, g.Code)
		st.m[k] = row
		gt.dirty.Store(true)
	}
	st.storeScalarsLocked(row, g)
	if st.obsCount[row] > 0 {
		st.obsScattered = true // old chain rows become garbage
	}
	st.obsHead[row], st.obsTail[row], st.obsCount[row] = 0, 0, 0
	for i := range g.Observations {
		st.appendObsLocked(row, &g.Observations[i])
	}
	st.mu.Unlock()
}

// rebuildLocked refreshes the sorted ref cache and its per-platform
// partitions. Caller holds cacheMu; stripesHeld says whether the caller
// already holds every stripe lock (Snapshot does).
func (gt *groupTable) rebuildLocked(stripesHeld bool) {
	if !gt.dirty.Swap(false) && gt.sorted != nil {
		return
	}
	type entry struct {
		p    platform.Platform
		code string
		ref  groupRef
	}
	var all []entry
	for i := range gt.stripes {
		st := &gt.stripes[i]
		if !stripesHeld {
			st.mu.Lock()
		}
		for k, row := range st.m {
			all = append(all, entry{k.p, k.code, makeGroupRef(uint32(i), row)})
		}
		if !stripesHeld {
			st.mu.Unlock()
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].p != all[j].p {
			return all[i].p < all[j].p
		}
		return all[i].code < all[j].code
	})
	sorted := make([]groupRef, len(all))
	for i, e := range all {
		sorted[i] = e.ref
	}
	byPlat := map[platform.Platform][]groupRef{}
	for lo := 0; lo < len(all); {
		hi := lo
		for hi < len(all) && all[hi].p == all[lo].p {
			hi++
		}
		byPlat[all[lo].p] = sorted[lo:hi:hi]
		lo = hi
	}
	gt.sorted = sorted
	gt.byPlat = byPlat
}

// countFor tallies one platform's Table 2 group counters.
func (gt *groupTable) countFor(p platform.Platform) (urls, joined int) {
	for i := range gt.stripes {
		st := &gt.stripes[i]
		st.mu.Lock()
		for _, row := range st.m {
			if st.plat[row] != uint8(p) {
				continue
			}
			urls++
			if st.flags[row]&gfJoined != 0 {
				joined++
			}
		}
		st.mu.Unlock()
	}
	return urls, joined
}

// compactAllLocked compacts every scattered stripe's observation columns.
// Caller holds every stripe lock (Snapshot's lockAll).
func (gt *groupTable) compactAllLocked() {
	for i := range gt.stripes {
		gt.stripes[i].compactLocked()
	}
}

// lockAll/unlockAll bracket Snapshot's consistent read: cacheMu first,
// then every stripe in ascending index order.
func (gt *groupTable) lockAll() {
	gt.cacheMu.Lock()
	for i := range gt.stripes {
		gt.stripes[i].mu.Lock()
	}
}

func (gt *groupTable) unlockAll() {
	for i := range gt.stripes {
		gt.stripes[i].mu.Unlock()
	}
	gt.cacheMu.Unlock()
}
