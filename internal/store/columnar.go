package store

import (
	"slices"
	"time"
	"unsafe"

	"msgscope/internal/ids"
	"msgscope/internal/platform"
)

// Columnar (struct-of-arrays) layouts for the hot record families. The
// paper-scale corpus is ~2.2M tweets and ~8.3M messages; storing each as a
// separate heap struct with its own string allocations costs ~473 B/tweet
// and ~97 B/message (BenchmarkStoreIngest against the former layout). The
// columns below keep the same information in parallel slices — numeric
// fields packed to their natural width, string fields interned to uint32
// handles through ids.Table, tweet text appended to a byte arena — and
// reconstruct TweetRecord/ControlRecord/MessageRecord values on demand.
// Reconstruction allocates nothing: interned strings are shared, text is
// an unsafe.String view into the arena, and times are rebuilt from
// unixNano.
//
// Time encoding: CreatedAt/SentAt are stored as int64 unixNano and
// restored with time.Unix(0, n).UTC(). Every timestamp the study produces
// is UTC (simclock), so the round trip is byte-identical through
// RFC 3339; non-UTC zones would be normalized, and instants outside the
// unixNano range (years 1678–2262) are unrepresentable. The zero
// time.Time is kept as a sentinel.

const zeroTimeNano = int64(-1 << 63)

func timeToNano(t time.Time) int64 {
	if t.IsZero() {
		return zeroTimeNano
	}
	return t.UnixNano()
}

func nanoToTime(n int64) time.Time {
	if n == zeroTimeNano {
		return time.Time{}
	}
	return time.Unix(0, n).UTC()
}

// textArena stores variable-length strings in fixed-size chunks (1 MiB),
// addressed by record index through packed (chunk, offset) positions plus
// a length column. Chunks are allocated at full capacity up front and
// never reallocated, so unsafe.String views into them stay valid for the
// life of the store and the arena carries no append-growth slack. A string
// larger than a chunk gets a dedicated exact-size chunk.
//
// Families whose texts are all empty (messages, unless the toxicity
// extension collects bodies) pay nothing: the position and length columns
// stay nil until the first non-empty string, and at() treats missing rows
// as "".
const (
	textChunkShift = 20
	textChunkSize  = 1 << textChunkShift
	textMaxChunks  = 1 << (32 - textChunkShift)
)

type textArena struct {
	chunks [][]byte
	pos    []uint32 // chunk<<textChunkShift | offset
	ln     []uint32
}

// append stores row's text. Rows must be appended in order; empty leading
// rows are backfilled when the first non-empty text arrives.
func (a *textArena) append(row int, s string) {
	if len(s) == 0 {
		if a.ln == nil {
			return
		}
		a.pos = append(a.pos, 0)
		a.ln = append(a.ln, 0)
		return
	}
	if a.ln == nil && row > 0 {
		a.pos = make([]uint32, row)
		a.ln = make([]uint32, row)
	}
	ci := len(a.chunks) - 1
	if ci < 0 || len(a.chunks[ci])+len(s) > cap(a.chunks[ci]) {
		if len(a.chunks) == textMaxChunks {
			panic("store: text arena exceeds 4 GiB; shard the study window")
		}
		size := textChunkSize
		if len(s) > size {
			size = len(s)
		}
		a.chunks = append(a.chunks, make([]byte, 0, size))
		ci = len(a.chunks) - 1
	}
	off := len(a.chunks[ci])
	a.chunks[ci] = append(a.chunks[ci], s...)
	a.pos = append(a.pos, uint32(ci)<<textChunkShift|uint32(off))
	a.ln = append(a.ln, uint32(len(s)))
}

func (a *textArena) at(i int) string {
	if i >= len(a.ln) {
		return ""
	}
	n := a.ln[i]
	if n == 0 {
		return ""
	}
	p := a.pos[i]
	return unsafe.String(&a.chunks[p>>textChunkShift][p&(textChunkSize-1)], int(n))
}

// view returns a length-trimmed copy of the arena's headers, immune to
// later appends. The chunk directory is cloned (appends may reallocate
// it); the chunk payloads are shared — rows the view covers were fully
// written before the view was taken and are never rewritten.
func (a *textArena) view(n int) textArena {
	k := min(n, len(a.ln))
	if k == 0 {
		return textArena{}
	}
	return textArena{chunks: slices.Clone(a.chunks), pos: a.pos[:k], ln: a.ln[:k]}
}

// Tweet flag bits: the low two bits mirror TweetSource, the top bit marks
// retweets.
const (
	flagSourceMask = uint8(SourceSearch | SourceStream)
	flagRetweet    = uint8(0x80)
)

// tweetCols is the tweet family, one slice per field. userTab/langTab are
// shared with the control family (both write under tweetMu); groupTab is
// the tweet family's own.
type tweetCols struct {
	ids      []uint64
	user     []uint32
	created  []int64
	lang     []uint32
	hashtags []int32
	mentions []int32
	flags    []uint8
	plat     []uint8
	group    []uint32
	text     textArena

	userTab, langTab, groupTab *ids.Table
}

func newTweetCols(userTab, langTab *ids.Table) tweetCols {
	return tweetCols{userTab: userTab, langTab: langTab, groupTab: ids.NewTable()}
}

func (c *tweetCols) len() int { return len(c.ids) }

func (c *tweetCols) append(t *TweetRecord) {
	c.ids = append(c.ids, t.ID)
	c.user = append(c.user, c.userTab.Handle(t.UserID))
	c.created = append(c.created, timeToNano(t.CreatedAt))
	c.lang = append(c.lang, c.langTab.Handle(t.Lang))
	c.hashtags = append(c.hashtags, int32(t.Hashtags))
	c.mentions = append(c.mentions, int32(t.Mentions))
	f := uint8(t.Source) & flagSourceMask
	if t.Retweet {
		f |= flagRetweet
	}
	c.flags = append(c.flags, f)
	c.plat = append(c.plat, uint8(t.Platform))
	c.group = append(c.group, c.groupTab.Handle(t.GroupCode))
	c.text.append(len(c.ids)-1, t.Text)
}

func (c *tweetCols) at(i int) TweetRecord {
	f := c.flags[i]
	return TweetRecord{
		ID:        c.ids[i],
		UserID:    c.userTab.Lookup(c.user[i]),
		CreatedAt: nanoToTime(c.created[i]),
		Lang:      c.langTab.Lookup(c.lang[i]),
		Hashtags:  int(c.hashtags[i]),
		Mentions:  int(c.mentions[i]),
		Retweet:   f&flagRetweet != 0,
		Text:      c.text.at(i),
		Platform:  platform.Platform(c.plat[i]),
		GroupCode: c.groupTab.Lookup(c.group[i]),
		Source:    TweetSource(f & flagSourceMask),
	}
}

// view returns a copy of the column headers trimmed to the current length,
// safe to read while writers keep appending (appends never move rows
// [0, n); the interning tables allow lock-free lookups).
func (c *tweetCols) view() tweetCols {
	n := c.len()
	return tweetCols{
		ids: c.ids[:n], user: c.user[:n], created: c.created[:n],
		lang: c.lang[:n], hashtags: c.hashtags[:n], mentions: c.mentions[:n],
		flags: c.flags[:n], plat: c.plat[:n], group: c.group[:n],
		text:    c.text.view(n),
		userTab: c.userTab, langTab: c.langTab, groupTab: c.groupTab,
	}
}

// controlCols is the control-tweet family (features only, no text).
type controlCols struct {
	ids      []uint64
	user     []uint32
	created  []int64
	lang     []uint32
	hashtags []int32
	mentions []int32
	flags    []uint8

	userTab, langTab *ids.Table
}

func newControlCols(userTab, langTab *ids.Table) controlCols {
	return controlCols{userTab: userTab, langTab: langTab}
}

func (c *controlCols) len() int { return len(c.ids) }

func (c *controlCols) append(r *ControlRecord) {
	c.ids = append(c.ids, r.ID)
	c.user = append(c.user, c.userTab.Handle(r.UserID))
	c.created = append(c.created, timeToNano(r.CreatedAt))
	c.lang = append(c.lang, c.langTab.Handle(r.Lang))
	c.hashtags = append(c.hashtags, int32(r.Hashtags))
	c.mentions = append(c.mentions, int32(r.Mentions))
	var f uint8
	if r.Retweet {
		f = flagRetweet
	}
	c.flags = append(c.flags, f)
}

func (c *controlCols) at(i int) ControlRecord {
	return ControlRecord{
		ID:        c.ids[i],
		UserID:    c.userTab.Lookup(c.user[i]),
		CreatedAt: nanoToTime(c.created[i]),
		Lang:      c.langTab.Lookup(c.lang[i]),
		Hashtags:  int(c.hashtags[i]),
		Mentions:  int(c.mentions[i]),
		Retweet:   c.flags[i]&flagRetweet != 0,
	}
}

func (c *controlCols) view() controlCols {
	n := c.len()
	return controlCols{
		ids: c.ids[:n], user: c.user[:n], created: c.created[:n],
		lang: c.lang[:n], hashtags: c.hashtags[:n], mentions: c.mentions[:n],
		flags: c.flags[:n], userTab: c.userTab, langTab: c.langTab,
	}
}

// msgCols is the message family. Message bodies are usually absent (the
// paper's figures never need them), so the text arena stays empty except
// for the 4-byte offset column.
type msgCols struct {
	plat   []uint8
	group  []uint32
	author []uint64
	sent   []int64
	typ    []uint8
	text   textArena

	groupTab *ids.Table
}

func newMsgCols() msgCols {
	return msgCols{groupTab: ids.NewTable()}
}

func (c *msgCols) len() int { return len(c.plat) }

func (c *msgCols) append(m *MessageRecord) {
	c.plat = append(c.plat, uint8(m.Platform))
	c.group = append(c.group, c.groupTab.Handle(m.GroupCode))
	c.author = append(c.author, m.AuthorKey)
	c.sent = append(c.sent, timeToNano(m.SentAt))
	c.typ = append(c.typ, uint8(m.Type))
	c.text.append(len(c.plat)-1, m.Text)
}

func (c *msgCols) at(i int) MessageRecord {
	return MessageRecord{
		Platform:  platform.Platform(c.plat[i]),
		GroupCode: c.groupTab.Lookup(c.group[i]),
		AuthorKey: c.author[i],
		SentAt:    nanoToTime(c.sent[i]),
		Type:      platform.MessageType(c.typ[i]),
		Text:      c.text.at(i),
	}
}

func (c *msgCols) view() msgCols {
	n := c.len()
	return msgCols{
		plat: c.plat[:n], group: c.group[:n], author: c.author[:n],
		sent: c.sent[:n], typ: c.typ[:n], text: c.text.view(n),
		groupTab: c.groupTab,
	}
}

// TweetList is a read-only view of tweets: either a whole family or an
// index-selected subset (one platform, one study day). At materializes a
// TweetRecord without allocating — strings are interned or arena-backed
// views — so `for i := 0; i < l.Len(); i++ { t := l.At(i) ... }` replaces
// the former []TweetRecord loops at the same cost.
type TweetList struct {
	c   tweetCols
	idx []uint32
	all bool // view over every row; idx unused
}

// Len reports the number of tweets in the view.
func (l TweetList) Len() int {
	if l.all {
		return l.c.len()
	}
	return len(l.idx)
}

// At returns the i'th tweet of the view. The record's strings alias
// store-owned memory: share them freely, but treat them as immutable.
func (l TweetList) At(i int) TweetRecord {
	if !l.all {
		i = int(l.idx[i])
	}
	return l.c.at(i)
}

// Where returns the sub-view of tweets satisfying keep, preserving order.
func (l TweetList) Where(keep func(TweetRecord) bool) TweetList {
	var idx []uint32
	for i, n := 0, l.Len(); i < n; i++ {
		if keep(l.At(i)) {
			j := uint32(i)
			if !l.all {
				j = l.idx[i]
			}
			idx = append(idx, j)
		}
	}
	return TweetList{c: l.c, idx: idx}
}

// ByDay partitions the view into zero-based study-day buckets; tweets
// outside [start, start+days) appear in no bucket.
func (l TweetList) ByDay(start time.Time, days int) []TweetList {
	if days <= 0 {
		return nil
	}
	idxs := make([][]uint32, days)
	startNano := timeToNano(start)
	const dayNanos = int64(24 * time.Hour)
	for i, n := 0, l.Len(); i < n; i++ {
		j := i
		if !l.all {
			j = int(l.idx[i])
		}
		c := l.c.created[j]
		if c == zeroTimeNano {
			continue
		}
		if d := int((c - startNano) / dayNanos); d >= 0 && d < days {
			idxs[d] = append(idxs[d], uint32(j))
		}
	}
	out := make([]TweetList, days)
	for d := range out {
		out[d] = TweetList{c: l.c, idx: idxs[d]}
	}
	return out
}

// ControlList is a read-only view of the control tweets.
type ControlList struct {
	c controlCols
}

// Len reports the number of control tweets.
func (l ControlList) Len() int { return l.c.len() }

// At returns the i'th control tweet.
func (l ControlList) At(i int) ControlRecord { return l.c.at(i) }

// MessageList is a read-only view of messages, optionally index-selected.
type MessageList struct {
	c   msgCols
	idx []uint32
	all bool
}

// Len reports the number of messages in the view.
func (l MessageList) Len() int {
	if l.all {
		return l.c.len()
	}
	return len(l.idx)
}

// At returns the i'th message of the view.
func (l MessageList) At(i int) MessageRecord {
	if !l.all {
		i = int(l.idx[i])
	}
	return l.c.at(i)
}
