package store

import (
	"slices"
	"time"
	"unsafe"

	"msgscope/internal/ids"
	"msgscope/internal/platform"
)

// Columnar (struct-of-arrays) layouts for the hot record families. The
// paper-scale corpus is ~2.2M tweets and ~8.3M messages; storing each as a
// separate heap struct with its own string allocations costs ~473 B/tweet
// and ~97 B/message (BenchmarkStoreIngest against the former layout). The
// columns below keep the same information in parallel slices — numeric
// fields packed to their natural width, string fields interned to uint32
// handles through ids.Table, tweet text appended to a byte arena — and
// reconstruct TweetRecord/ControlRecord/MessageRecord values on demand.
// Reconstruction allocates nothing: interned strings are shared, text is
// an unsafe.String view into the arena, and times are rebuilt from
// unixNano.
//
// Spilling (DESIGN.md §16): each family is a chain of immutable mmap-backed
// segments holding rows [0, frozen) plus the in-heap columns holding the
// hot tail [frozen, len()). Row numbering is global and stable — sealing
// moves rows out of the heap without renumbering them, so dedup indexes,
// checkpoint marks, and index-selected views stay valid across a seal.
// Accessors branch on frozen; hot-path loops that touch only the heap tail
// (append, capture from a mark past frozen) never pay the branch's cold
// side.
//
// Time encoding: CreatedAt/SentAt are stored as int64 unixNano and
// restored with time.Unix(0, n).UTC(). Every timestamp the study produces
// is UTC (simclock), so the round trip is byte-identical through
// RFC 3339; non-UTC zones would be normalized, and instants outside the
// unixNano range (years 1678–2262) are unrepresentable. The zero
// time.Time is kept as a sentinel.

const zeroTimeNano = int64(-1 << 63)

func timeToNano(t time.Time) int64 {
	if t.IsZero() {
		return zeroTimeNano
	}
	return t.UnixNano()
}

func nanoToTime(n int64) time.Time {
	if n == zeroTimeNano {
		return time.Time{}
	}
	return time.Unix(0, n).UTC()
}

// sliceBytes is the retained-heap cost of one column (capacity, not
// length: append slack is real memory).
func sliceBytes[T any](s []T) int64 {
	var z T
	return int64(cap(s)) * int64(unsafe.Sizeof(z))
}

// textArena stores variable-length strings in fixed-size chunks (1 MiB),
// addressed by record index through packed (chunk, offset) positions plus
// a length column. Chunks are allocated at full capacity up front and
// never reallocated, so unsafe.String views into them stay valid for the
// life of the store and the arena carries no append-growth slack. A string
// larger than a chunk gets a dedicated exact-size chunk. Positions are
// 64-bit — chunk<<20 | offset — so capacity scales with the corpus
// instead of aborting at the former 4 GiB directory limit; a family whose
// text outgrows its budget spills to segments rather than panicking.
//
// Families whose texts are all empty (messages, unless the toxicity
// extension collects bodies) pay nothing: the position and length columns
// stay nil until the first non-empty string, and at() treats missing rows
// as "".
const (
	textChunkShift = 20
	textChunkSize  = 1 << textChunkShift
)

type textArena struct {
	chunks [][]byte
	pos    []uint64 // chunk<<textChunkShift | offset
	ln     []uint32
}

// append stores row's text. Rows must be appended in order; empty leading
// rows are backfilled when the first non-empty text arrives.
func (a *textArena) append(row int, s string) {
	if len(s) == 0 {
		if a.ln == nil {
			return
		}
		a.pos = append(a.pos, 0)
		a.ln = append(a.ln, 0)
		return
	}
	if a.ln == nil && row > 0 {
		a.pos = make([]uint64, row)
		a.ln = make([]uint32, row)
	}
	ci := len(a.chunks) - 1
	if ci < 0 || len(a.chunks[ci])+len(s) > cap(a.chunks[ci]) {
		size := textChunkSize
		if len(s) > size {
			size = len(s)
		}
		a.chunks = append(a.chunks, make([]byte, 0, size))
		ci = len(a.chunks) - 1
	}
	off := len(a.chunks[ci])
	a.chunks[ci] = append(a.chunks[ci], s...)
	a.pos = append(a.pos, uint64(ci)<<textChunkShift|uint64(off))
	a.ln = append(a.ln, uint32(len(s)))
}

func (a *textArena) at(i int) string {
	if i >= len(a.ln) {
		return ""
	}
	n := a.ln[i]
	if n == 0 {
		return ""
	}
	p := a.pos[i]
	return unsafe.String(&a.chunks[p>>textChunkShift][p&(textChunkSize-1)], int(n))
}

func (a *textArena) heapBytes() int64 {
	b := sliceBytes(a.pos) + sliceBytes(a.ln)
	for _, ch := range a.chunks {
		b += int64(cap(ch))
	}
	return b
}

// view returns a length-trimmed copy of the arena's headers, immune to
// later appends. The chunk directory is cloned (appends may reallocate
// it); the chunk payloads are shared — rows the view covers were fully
// written before the view was taken and are never rewritten.
func (a *textArena) view(n int) textArena {
	k := min(n, len(a.ln))
	if k == 0 {
		return textArena{}
	}
	return textArena{chunks: slices.Clone(a.chunks), pos: a.pos[:k], ln: a.ln[:k]}
}

// Tweet flag bits: the low two bits mirror TweetSource, the top bit marks
// retweets.
const (
	flagSourceMask = uint8(SourceSearch | SourceStream)
	flagRetweet    = uint8(0x80)
)

// segLocate finds the segment covering global row i in a slice ordered by
// start. Callers guarantee i < frozen, so the search always lands.
func segLocate(n int, end func(k int) int, i int) int {
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if i >= end(mid) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// tweetCols is the tweet family: mmap-backed segments for rows
// [0, frozen), heap columns for the hot tail. userTab/langTab are shared
// with the control family (both write under tweetMu); groupTab is the
// tweet family's own. Heap slices are indexed by i-frozen.
type tweetCols struct {
	segs   []tweetSeg
	frozen int

	ids      []uint64
	user     []uint32
	created  []int64
	lang     []uint32
	hashtags []int32
	mentions []int32
	flags    []uint8
	plat     []uint8
	group    []uint32
	text     textArena

	userTab, langTab, groupTab *ids.Table
}

func newTweetCols(userTab, langTab *ids.Table) tweetCols {
	return tweetCols{userTab: userTab, langTab: langTab, groupTab: ids.NewTable()}
}

func (c *tweetCols) len() int { return c.frozen + len(c.ids) }

func (c *tweetCols) seg(i int) (*tweetSeg, int) {
	k := segLocate(len(c.segs), func(k int) int { return c.segs[k].start + c.segs[k].n }, i)
	s := &c.segs[k]
	return s, i - s.start
}

func (c *tweetCols) append(t *TweetRecord) {
	c.ids = append(c.ids, t.ID)
	c.user = append(c.user, c.userTab.Handle(t.UserID))
	c.created = append(c.created, timeToNano(t.CreatedAt))
	c.lang = append(c.lang, c.langTab.Handle(t.Lang))
	c.hashtags = append(c.hashtags, int32(t.Hashtags))
	c.mentions = append(c.mentions, int32(t.Mentions))
	f := uint8(t.Source) & flagSourceMask
	if t.Retweet {
		f |= flagRetweet
	}
	c.flags = append(c.flags, f)
	c.plat = append(c.plat, uint8(t.Platform))
	c.group = append(c.group, c.groupTab.Handle(t.GroupCode))
	c.text.append(len(c.ids)-1, t.Text)
}

func (c *tweetCols) at(i int) TweetRecord {
	if i >= c.frozen {
		j := i - c.frozen
		f := c.flags[j]
		return TweetRecord{
			ID:        c.ids[j],
			UserID:    c.userTab.Lookup(c.user[j]),
			CreatedAt: nanoToTime(c.created[j]),
			Lang:      c.langTab.Lookup(c.lang[j]),
			Hashtags:  int(c.hashtags[j]),
			Mentions:  int(c.mentions[j]),
			Retweet:   f&flagRetweet != 0,
			Text:      c.text.at(j),
			Platform:  platform.Platform(c.plat[j]),
			GroupCode: c.groupTab.Lookup(c.group[j]),
			Source:    TweetSource(f & flagSourceMask),
		}
	}
	s, j := c.seg(i)
	f := s.flags[j]
	return TweetRecord{
		ID:        s.ids[j],
		UserID:    s.users.str(s.user[j]),
		CreatedAt: nanoToTime(s.created[j]),
		Lang:      s.langs.str(s.lang[j]),
		Hashtags:  int(s.hashtags[j]),
		Mentions:  int(s.mentions[j]),
		Retweet:   f&flagRetweet != 0,
		Text:      s.text(j),
		Platform:  platform.Platform(s.plat[j]),
		GroupCode: s.groups.str(s.group[j]),
		Source:    TweetSource(f & flagSourceMask),
	}
}

func (c *tweetCols) platAt(i int) uint8 {
	if i >= c.frozen {
		return c.plat[i-c.frozen]
	}
	s, j := c.seg(i)
	return s.plat[j]
}

func (c *tweetCols) createdNano(i int) int64 {
	if i >= c.frozen {
		return c.created[i-c.frozen]
	}
	s, j := c.seg(i)
	return s.created[j]
}

// userHandle returns the live userTab handle of row i's author, the shared
// handle space distinct-user counts key on.
func (c *tweetCols) userHandle(i int) uint32 {
	if i >= c.frozen {
		return c.user[i-c.frozen]
	}
	s, j := c.seg(i)
	return s.userMap[s.user[j]]
}

// orFlags merges bits into row i's flags, reporting whether they changed.
// Frozen rows mutate their private (copy-on-write) mapping — the file is
// untouched, which is why segments pinned by a checkpoint stay valid: a
// resume re-merges from the replayed log instead.
func (c *tweetCols) orFlags(i int, bits uint8) bool {
	if i >= c.frozen {
		j := i - c.frozen
		if nf := c.flags[j] | bits; nf != c.flags[j] {
			c.flags[j] = nf
			return true
		}
		return false
	}
	s, j := c.seg(i)
	if nf := s.flags[j] | bits; nf != s.flags[j] {
		s.flags[j] = nf
		return true
	}
	return false
}

func (c *tweetCols) heapBytes() int64 {
	return sliceBytes(c.ids) + sliceBytes(c.user) + sliceBytes(c.created) +
		sliceBytes(c.lang) + sliceBytes(c.hashtags) + sliceBytes(c.mentions) +
		sliceBytes(c.flags) + sliceBytes(c.plat) + sliceBytes(c.group) +
		c.text.heapBytes()
}

// view returns a copy of the column headers trimmed to the current length,
// safe to read while writers keep appending (appends never move rows
// [0, n); the interning tables allow lock-free lookups; the segment
// directory is cloned because a seal appends to it).
func (c *tweetCols) view() tweetCols {
	n := len(c.ids)
	return tweetCols{
		segs: slices.Clone(c.segs), frozen: c.frozen,
		ids: c.ids[:n], user: c.user[:n], created: c.created[:n],
		lang: c.lang[:n], hashtags: c.hashtags[:n], mentions: c.mentions[:n],
		flags: c.flags[:n], plat: c.plat[:n], group: c.group[:n],
		text:    c.text.view(n),
		userTab: c.userTab, langTab: c.langTab, groupTab: c.groupTab,
	}
}

// controlCols is the control-tweet family (features only, no text).
type controlCols struct {
	segs   []controlSeg
	frozen int

	ids      []uint64
	user     []uint32
	created  []int64
	lang     []uint32
	hashtags []int32
	mentions []int32
	flags    []uint8

	userTab, langTab *ids.Table
}

func newControlCols(userTab, langTab *ids.Table) controlCols {
	return controlCols{userTab: userTab, langTab: langTab}
}

func (c *controlCols) len() int { return c.frozen + len(c.ids) }

func (c *controlCols) seg(i int) (*controlSeg, int) {
	k := segLocate(len(c.segs), func(k int) int { return c.segs[k].start + c.segs[k].n }, i)
	s := &c.segs[k]
	return s, i - s.start
}

func (c *controlCols) append(r *ControlRecord) {
	c.ids = append(c.ids, r.ID)
	c.user = append(c.user, c.userTab.Handle(r.UserID))
	c.created = append(c.created, timeToNano(r.CreatedAt))
	c.lang = append(c.lang, c.langTab.Handle(r.Lang))
	c.hashtags = append(c.hashtags, int32(r.Hashtags))
	c.mentions = append(c.mentions, int32(r.Mentions))
	var f uint8
	if r.Retweet {
		f = flagRetweet
	}
	c.flags = append(c.flags, f)
}

func (c *controlCols) at(i int) ControlRecord {
	if i >= c.frozen {
		j := i - c.frozen
		return ControlRecord{
			ID:        c.ids[j],
			UserID:    c.userTab.Lookup(c.user[j]),
			CreatedAt: nanoToTime(c.created[j]),
			Lang:      c.langTab.Lookup(c.lang[j]),
			Hashtags:  int(c.hashtags[j]),
			Mentions:  int(c.mentions[j]),
			Retweet:   c.flags[j]&flagRetweet != 0,
		}
	}
	s, j := c.seg(i)
	return ControlRecord{
		ID:        s.ids[j],
		UserID:    s.users.str(s.user[j]),
		CreatedAt: nanoToTime(s.created[j]),
		Lang:      s.langs.str(s.lang[j]),
		Hashtags:  int(s.hashtags[j]),
		Mentions:  int(s.mentions[j]),
		Retweet:   s.flags[j]&flagRetweet != 0,
	}
}

func (c *controlCols) heapBytes() int64 {
	return sliceBytes(c.ids) + sliceBytes(c.user) + sliceBytes(c.created) +
		sliceBytes(c.lang) + sliceBytes(c.hashtags) + sliceBytes(c.mentions) +
		sliceBytes(c.flags)
}

func (c *controlCols) view() controlCols {
	n := len(c.ids)
	return controlCols{
		segs: slices.Clone(c.segs), frozen: c.frozen,
		ids: c.ids[:n], user: c.user[:n], created: c.created[:n],
		lang: c.lang[:n], hashtags: c.hashtags[:n], mentions: c.mentions[:n],
		flags: c.flags[:n], userTab: c.userTab, langTab: c.langTab,
	}
}

// msgCols is the message family. Message bodies are usually absent (the
// paper's figures never need them), so the text arena stays empty except
// for the offset column.
type msgCols struct {
	segs   []msgSeg
	frozen int

	plat   []uint8
	group  []uint32
	author []uint64
	sent   []int64
	typ    []uint8
	text   textArena

	groupTab *ids.Table
}

func newMsgCols() msgCols {
	return msgCols{groupTab: ids.NewTable()}
}

func (c *msgCols) len() int { return c.frozen + len(c.plat) }

func (c *msgCols) seg(i int) (*msgSeg, int) {
	k := segLocate(len(c.segs), func(k int) int { return c.segs[k].start + c.segs[k].n }, i)
	s := &c.segs[k]
	return s, i - s.start
}

func (c *msgCols) append(m *MessageRecord) {
	c.plat = append(c.plat, uint8(m.Platform))
	c.group = append(c.group, c.groupTab.Handle(m.GroupCode))
	c.author = append(c.author, m.AuthorKey)
	c.sent = append(c.sent, timeToNano(m.SentAt))
	c.typ = append(c.typ, uint8(m.Type))
	c.text.append(len(c.plat)-1, m.Text)
}

func (c *msgCols) at(i int) MessageRecord {
	if i >= c.frozen {
		j := i - c.frozen
		return MessageRecord{
			Platform:  platform.Platform(c.plat[j]),
			GroupCode: c.groupTab.Lookup(c.group[j]),
			AuthorKey: c.author[j],
			SentAt:    nanoToTime(c.sent[j]),
			Type:      platform.MessageType(c.typ[j]),
			Text:      c.text.at(j),
		}
	}
	s, j := c.seg(i)
	return MessageRecord{
		Platform:  platform.Platform(s.plat[j]),
		GroupCode: s.groups.str(s.group[j]),
		AuthorKey: s.author[j],
		SentAt:    nanoToTime(s.sent[j]),
		Type:      platform.MessageType(s.typ[j]),
		Text:      s.text(j),
	}
}

func (c *msgCols) platAt(i int) uint8 {
	if i >= c.frozen {
		return c.plat[i-c.frozen]
	}
	s, j := c.seg(i)
	return s.plat[j]
}

func (c *msgCols) authorKey(i int) uint64 {
	if i >= c.frozen {
		return c.author[i-c.frozen]
	}
	s, j := c.seg(i)
	return s.author[j]
}

func (c *msgCols) heapBytes() int64 {
	return sliceBytes(c.plat) + sliceBytes(c.group) + sliceBytes(c.author) +
		sliceBytes(c.sent) + sliceBytes(c.typ) + c.text.heapBytes()
}

func (c *msgCols) view() msgCols {
	n := len(c.plat)
	return msgCols{
		segs: slices.Clone(c.segs), frozen: c.frozen,
		plat: c.plat[:n], group: c.group[:n], author: c.author[:n],
		sent: c.sent[:n], typ: c.typ[:n], text: c.text.view(n),
		groupTab: c.groupTab,
	}
}

// TweetList is a read-only view of tweets: either a whole family or an
// index-selected subset (one platform, one study day). At materializes a
// TweetRecord without allocating — strings are interned, arena-backed, or
// mmap-backed views — so `for i := 0; i < l.Len(); i++ { t := l.At(i) }`
// replaces the former []TweetRecord loops at the same cost.
type TweetList struct {
	c   tweetCols
	idx []uint32
	all bool // view over every row; idx unused
}

// Len reports the number of tweets in the view.
func (l TweetList) Len() int {
	if l.all {
		return l.c.len()
	}
	return len(l.idx)
}

// At returns the i'th tweet of the view. The record's strings alias
// store-owned memory: share them freely, but treat them as immutable.
func (l TweetList) At(i int) TweetRecord {
	if !l.all {
		i = int(l.idx[i])
	}
	return l.c.at(i)
}

// Where returns the sub-view of tweets satisfying keep, preserving order.
func (l TweetList) Where(keep func(TweetRecord) bool) TweetList {
	var idx []uint32
	for i, n := 0, l.Len(); i < n; i++ {
		if keep(l.At(i)) {
			j := uint32(i)
			if !l.all {
				j = l.idx[i]
			}
			idx = append(idx, j)
		}
	}
	return TweetList{c: l.c, idx: idx}
}

// ByDay partitions the view into zero-based study-day buckets; tweets
// outside [start, start+days) appear in no bucket.
func (l TweetList) ByDay(start time.Time, days int) []TweetList {
	if days <= 0 {
		return nil
	}
	idxs := make([][]uint32, days)
	startNano := timeToNano(start)
	const dayNanos = int64(24 * time.Hour)
	for i, n := 0, l.Len(); i < n; i++ {
		j := i
		if !l.all {
			j = int(l.idx[i])
		}
		c := l.c.createdNano(j)
		if c == zeroTimeNano {
			continue
		}
		if d := int((c - startNano) / dayNanos); d >= 0 && d < days {
			idxs[d] = append(idxs[d], uint32(j))
		}
	}
	out := make([]TweetList, days)
	for d := range out {
		out[d] = TweetList{c: l.c, idx: idxs[d]}
	}
	return out
}

// ControlList is a read-only view of the control tweets.
type ControlList struct {
	c controlCols
}

// Len reports the number of control tweets.
func (l ControlList) Len() int { return l.c.len() }

// At returns the i'th control tweet.
func (l ControlList) At(i int) ControlRecord { return l.c.at(i) }

// MessageList is a read-only view of messages, optionally index-selected.
type MessageList struct {
	c   msgCols
	idx []uint32
	all bool
}

// Len reports the number of messages in the view.
func (l MessageList) Len() int {
	if l.all {
		return l.c.len()
	}
	return len(l.idx)
}

// At returns the i'th message of the view.
func (l MessageList) At(i int) MessageRecord {
	if !l.all {
		i = int(l.idx[i])
	}
	return l.c.at(i)
}
