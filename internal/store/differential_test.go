package store

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"msgscope/internal/platform"
)

// pointerGroupStore is the pre-columnar group layout — a map of heap
// records mutated through held pointers — reimplemented here as the
// reference model for the differential test. It replays the exact update
// semantics the old []*GroupRecord store had, so any byte of groups.jsonl
// the columnar layout produces differently is a migration bug, not a
// tolerated re-encoding.
type pointerGroupStore struct {
	seenTweets map[uint64]bool
	seenPosts  map[uint64]bool
	groups     map[groupKey]*GroupRecord
}

func newPointerGroupStore() *pointerGroupStore {
	return &pointerGroupStore{
		seenTweets: map[uint64]bool{},
		seenPosts:  map[uint64]bool{},
		groups:     map[groupKey]*GroupRecord{},
	}
}

func (ps *pointerGroupStore) upsert(p platform.Platform, code string, at time.Time) (*GroupRecord, bool) {
	k := groupKey{p, code}
	if g, ok := ps.groups[k]; ok {
		if at.Before(g.FirstSeen) {
			g.FirstSeen = at
		}
		if at.After(g.LastSeen) {
			g.LastSeen = at
		}
		return g, false
	}
	g := &GroupRecord{Platform: p, Code: code, FirstSeen: at, LastSeen: at}
	ps.groups[k] = g
	return g, true
}

func (ps *pointerGroupStore) addTweetBatch(batch []TweetIngest) {
	for i := range batch {
		t := &batch[i].Tweet
		if ps.seenTweets[t.ID] {
			continue
		}
		ps.seenTweets[t.ID] = true
		g, isNew := ps.upsert(t.Platform, t.GroupCode, t.CreatedAt)
		g.SeenTwitter = true
		g.Tweets++
		if isNew && batch[i].Canonical != "" {
			g.Canonical = batch[i].Canonical
		}
	}
}

func (ps *pointerGroupStore) addPost(p PostRecord) {
	if ps.seenPosts[p.ID] {
		return
	}
	ps.seenPosts[p.ID] = true
	g, _ := ps.upsert(p.Platform, p.GroupCode, p.CreatedAt)
	g.SeenSocial = true
	g.SocialPosts++
}

func (ps *pointerGroupStore) setCanonical(p platform.Platform, code, canonical string) {
	if g, ok := ps.groups[groupKey{p, code}]; ok {
		g.Canonical = canonical
	}
}

func (ps *pointerGroupStore) addObservation(p platform.Platform, code string, o Observation) {
	if g, ok := ps.groups[groupKey{p, code}]; ok {
		g.Observations = append(g.Observations, o)
		g.Deferred = false
		g.DeferReason = ""
	}
}

func (ps *pointerGroupStore) markJoined(p platform.Platform, code string, update func(*GroupRecord)) {
	if g, ok := ps.groups[groupKey{p, code}]; ok {
		g.Joined = true
		g.Deferred = false
		g.DeferReason = ""
		update(g)
	}
}

func (ps *pointerGroupStore) markDeferred(p platform.Platform, code, reason string) {
	if g, ok := ps.groups[groupKey{p, code}]; ok {
		g.Deferred = true
		g.DeferReason = reason
	}
}

// saveJSONL encodes the pointer layout exactly as the old Save did: sorted
// by (platform, code), one reflective json.Marshal per record per line.
func (ps *pointerGroupStore) saveJSONL(t *testing.T) []byte {
	t.Helper()
	keys := make([]groupKey, 0, len(ps.groups))
	for k := range ps.groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].p != keys[j].p {
			return keys[i].p < keys[j].p
		}
		return keys[i].code < keys[j].code
	})
	var buf bytes.Buffer
	for _, k := range keys {
		b, err := json.Marshal(ps.groups[k])
		if err != nil {
			t.Fatalf("pointer-layout marshal: %v", err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// differentialWorkload drives both layouts through an identical randomized
// operation sequence covering every group mutation path: batched tweet
// ingest with duplicates, secondary-source posts, canonical rewrites,
// out-of-order observations, joins, and deferrals.
func differentialWorkload(t *testing.T, seed int64, s *Store, ps *pointerGroupStore) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	base := time.Date(2019, 4, 1, 0, 0, 0, 0, time.UTC)
	codes := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	plats := []platform.Platform{platform.WhatsApp, platform.Telegram, platform.Discord}

	pick := func() (platform.Platform, string) {
		return plats[rng.Intn(len(plats))], codes[rng.Intn(len(codes))]
	}
	var tweetID uint64
	for op := 0; op < 4000; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // tweet batch with intra- and inter-batch duplicates
			n := 1 + rng.Intn(6)
			batch := make([]TweetIngest, n)
			for i := range batch {
				p, code := pick()
				if rng.Intn(4) == 0 && tweetID > 0 {
					// Replay an already-seen ID (the other API).
					batch[i].Tweet.ID = uint64(rng.Int63n(int64(tweetID))) + 1
				} else {
					tweetID++
					batch[i].Tweet.ID = tweetID
				}
				batch[i].Tweet.Platform = p
				batch[i].Tweet.GroupCode = code
				batch[i].Tweet.CreatedAt = base.Add(time.Duration(rng.Intn(100000)) * time.Second)
				batch[i].Tweet.Source = SourceSearch
				if rng.Intn(3) == 0 {
					batch[i].Canonical = "https://example.invalid/" + code
				}
			}
			s.AddTweetBatch(batch)
			ps.addTweetBatch(batch)
		case 4: // secondary-network post, sometimes a duplicate ID
			p, code := pick()
			post := PostRecord{
				ID:        uint64(rng.Int63n(500)) + 1,
				Platform:  p,
				GroupCode: code,
				CreatedAt: base.Add(time.Duration(rng.Intn(100000)) * time.Second),
			}
			s.AddPost(post)
			ps.addPost(post)
		case 5: // canonical rewrite (sometimes of an unknown group)
			p, code := pick()
			if rng.Intn(5) == 0 {
				code = "never-seen"
			}
			canon := "https://canon.invalid/" + code
			s.SetCanonical(p, code, canon)
			ps.setCanonical(p, code, canon)
		case 6, 7: // daily observation, alive or revoked
			p, code := pick()
			o := Observation{
				At:    base.Add(time.Duration(rng.Intn(40)) * 24 * time.Hour),
				Alive: rng.Intn(4) != 0,
			}
			if o.Alive {
				o.Title = "grp " + code
				o.Members = rng.Intn(5000)
				o.Online = rng.Intn(200)
				o.IsChannel = rng.Intn(6) == 0
				if p == platform.WhatsApp {
					o.CreatorPhoneH = HashPhone(code)
					o.CreatorCountry = "BR"
					o.CreatorKey = o.CreatorPhoneH
				}
				if rng.Intn(3) == 0 {
					o.CreatedAt = base.AddDate(-1, 0, rng.Intn(300))
				}
			}
			s.AddObservation(p, code, o)
			ps.addObservation(p, code, o)
		case 8: // join with metadata
			p, code := pick()
			at := base.Add(time.Duration(rng.Intn(100000)) * time.Second)
			members, channels := rng.Intn(10000), rng.Intn(30)
			hidden := rng.Intn(5) == 0
			upd := func(g *GroupRecord) {
				g.JoinedAt = at
				g.MemberCount = members
				g.Channels = channels
				g.HiddenMembers = hidden
				g.CreatorKey = "creator-" + code
			}
			s.MarkJoined(p, code, upd)
			ps.markJoined(p, code, upd)
		case 9: // deferral
			p, code := pick()
			s.MarkDeferred(p, code, "monitor")
			ps.markDeferred(p, code, "monitor")
		}
	}
}

// TestColumnarGroupsSaveMatchesPointerLayout replays one randomized
// workload into the columnar store and into the old pointer layout and
// requires the two groups.jsonl outputs to be byte-identical. This is the
// migration's ground-truth gate: the wire format, field ordering,
// omitempty behavior, zero-time round-trips, and observation order must
// all survive the SoA rewrite bit-for-bit.
func TestColumnarGroupsSaveMatchesPointerLayout(t *testing.T) {
	for _, seed := range []int64{1, 42, 4242} {
		s := New()
		ps := newPointerGroupStore()
		differentialWorkload(t, seed, s, ps)

		dir := t.TempDir()
		if err := s.Save(dir); err != nil {
			t.Fatalf("seed %d: Save: %v", seed, err)
		}
		got, err := os.ReadFile(filepath.Join(dir, "groups.jsonl"))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := ps.saveJSONL(t)
		if !bytes.Equal(got, want) {
			gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
			for i := 0; i < len(gl) && i < len(wl); i++ {
				if !bytes.Equal(gl[i], wl[i]) {
					t.Fatalf("seed %d: groups.jsonl line %d differs\ncolumnar: %s\npointer:  %s",
						seed, i+1, gl[i], wl[i])
				}
			}
			t.Fatalf("seed %d: groups.jsonl length differs: columnar %d lines, pointer %d lines",
				seed, len(gl), len(wl))
		}
	}
}

// TestGroupStoreRaceHammer pounds the group family from concurrent
// writers (tweet batches, observations, joins, deferrals, canonical
// rewrites) while readers take lookups, counts, sorted views, and full
// snapshots. Run under -race this validates the lock protocol of the
// columnar stripes: no torn column access, no rebuild racing a writer.
// Cross-row invariants are checked only after the writers quiesce —
// same-row read-during-write remains undefined, exactly as it was for the
// pointer layout.
func TestGroupStoreRaceHammer(t *testing.T) {
	s := New()
	base := time.Date(2019, 4, 1, 0, 0, 0, 0, time.UTC)
	codes := []string{"alpha", "beta", "gamma", "delta"}
	plats := []platform.Platform{platform.WhatsApp, platform.Telegram, platform.Discord}

	const writers, readers, opsPer = 4, 3, 400
	var wg, rwg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			for op := 0; op < opsPer; op++ {
				p := plats[rng.Intn(len(plats))]
				code := codes[rng.Intn(len(codes))]
				switch rng.Intn(5) {
				case 0:
					s.AddTweetBatch([]TweetIngest{{Tweet: TweetRecord{
						ID:        uint64(w*opsPer+op) + 1,
						Platform:  p,
						GroupCode: code,
						CreatedAt: base.Add(time.Duration(op) * time.Minute),
						Source:    SourceStream,
					}}})
				case 1:
					s.AddObservation(p, code, Observation{
						At: base.Add(time.Duration(op) * time.Hour), Alive: true,
						Members: op, Title: "t",
					})
				case 2:
					s.MarkJoined(p, code, func(g *GroupRecord) {
						g.JoinedAt = base
						g.MemberCount = op
					})
				case 3:
					s.MarkDeferred(p, code, "monitor")
				case 4:
					s.SetCanonical(p, code, "https://canon.invalid/"+code)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := plats[rng.Intn(len(plats))]
				code := codes[rng.Intn(len(codes))]
				if g, ok := s.Group(p, code); ok && g.Code != code {
					t.Errorf("lookup returned wrong record: %q != %q", g.Code, code)
					return
				}
				_ = s.CountsFor(p)
				_ = s.Groups().Len()
				_ = s.Snapshot(base, 3)
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	rwg.Wait()

	// Writers quiesced: the full dataset must now be internally
	// consistent — every record reconstructable, observation chains
	// intact and ordered as appended, snapshot equal to live reads.
	list := s.Groups()
	sn := s.Snapshot(base, 3)
	if sn.Groups.Len() != list.Len() {
		t.Fatalf("snapshot has %d groups, store has %d", sn.Groups.Len(), list.Len())
	}
	for i := 0; i < list.Len(); i++ {
		g := list.Record(i)
		if g.Code == "" {
			t.Fatalf("group %d reconstructed with empty code", i)
		}
		obs := list.Obs(i)
		if obs.Len() != len(g.Observations) {
			t.Fatalf("%v/%s: ObsList %d vs Record %d observations",
				g.Platform, g.Code, obs.Len(), len(g.Observations))
		}
		seen := 0
		obs.Each(func(o Observation) bool {
			if o != g.Observations[seen] {
				t.Fatalf("%v/%s: observation %d differs between walk and record",
					g.Platform, g.Code, seen)
			}
			seen++
			return true
		})
		if seen != obs.Len() {
			t.Fatalf("%v/%s: Each visited %d of %d", g.Platform, g.Code, seen, obs.Len())
		}
	}
}
