package store

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"msgscope/internal/platform"
)

// liveHeap forces a collection and reports the live heap size.
func liveHeap() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// Differential tests for the streaming JSONL load path: streaming a saved
// dataset into the columnar store must reproduce, byte for byte, both the
// files a materialize-then-ingest load would write and the files the
// original store wrote. These pin the tentpole's "same bytes, new layout"
// contract without regenerating any golden files.

// buildDifferentialStore exercises every field the JSONL files carry:
// merged tweet sources, canonical URLs, group observations and join data,
// message types, posts, and users with linked accounts and creator flags.
func buildDifferentialStore() *Store {
	base := time.Date(2019, 4, 1, 0, 0, 0, 0, time.UTC)
	s := New()
	for i := 0; i < 300; i++ {
		p := platform.All[i%len(platform.All)]
		s.AddTweetBatch([]TweetIngest{{
			Tweet: TweetRecord{
				ID:        uint64(i + 1),
				UserID:    "u" + strings.Repeat("x", i%5),
				CreatedAt: base.Add(time.Duration(i) * time.Minute),
				Lang:      []string{"en", "es", "pt"}[i%3],
				Hashtags:  i % 4,
				Mentions:  i % 3,
				Retweet:   i%2 == 0,
				Text:      "tweet body " + strings.Repeat("y", i%17),
				Platform:  p,
				GroupCode: "g" + string(rune('a'+i%7)),
				Source:    SourceSearch,
			},
			Canonical: "https://example.invalid/g" + string(rune('a'+i%7)),
		}})
	}
	// Re-ingest a few IDs from the other API so source bits merge.
	for i := 0; i < 50; i++ {
		s.AddTweet(TweetRecord{ID: uint64(i + 1), Platform: platform.All[i%len(platform.All)],
			GroupCode: "g" + string(rune('a'+i%7)), CreatedAt: base, Source: SourceStream})
	}
	for i := 0; i < 40; i++ {
		s.AddControl(ControlRecord{ID: uint64(1000 + i), UserID: "c1", CreatedAt: base.Add(time.Duration(i) * time.Hour),
			Lang: "en", Hashtags: i % 2, Retweet: i%3 == 0})
	}
	s.MarkJoined(platform.WhatsApp, "ga", func(g *GroupRecord) {
		g.MemberCount = 25
		g.CreatorKey = "ck"
	})
	s.AddObservation(platform.WhatsApp, "ga", Observation{At: base, Alive: true, Members: 25, Title: "obs"})
	s.MarkDeferred(platform.Telegram, "gb", "monitor")
	for i := 0; i < 200; i++ {
		s.AddMessage(MessageRecord{Platform: platform.All[i%len(platform.All)], GroupCode: "ga",
			AuthorKey: uint64(i % 23), SentAt: base.Add(time.Duration(i) * time.Minute),
			Type: platform.MessageType(i % 4), Text: map[bool]string{true: "msg body"}[i%5 == 0]})
	}
	s.AddPost(PostRecord{ID: 7, Author: "a", CreatedAt: base, Text: "post", Platform: platform.Discord, GroupCode: "gc"})
	for i := 0; i < 30; i++ {
		s.UpsertUser(UserRecord{Platform: platform.WhatsApp, Key: uint64(i + 1),
			PhoneHash: HashPhone("+5511" + strings.Repeat("9", i%4)), Country: "BR",
			Linked: map[bool][]string{true: {"tg:1", "dc:2"}}[i%6 == 0], Creator: i%7 == 0})
	}
	return s
}

var datasetFiles = []string{"tweets.jsonl", "control.jsonl", "groups.jsonl", "messages.jsonl", "posts.jsonl", "users.jsonl"}

func compareDirs(t *testing.T, want, got string) {
	t.Helper()
	for _, f := range datasetFiles {
		a, errA := os.ReadFile(filepath.Join(want, f))
		b, errB := os.ReadFile(filepath.Join(got, f))
		if os.IsNotExist(errA) && os.IsNotExist(errB) {
			continue
		}
		if errA != nil || errB != nil {
			t.Fatalf("%s: read: %v / %v", f, errA, errB)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs after round trip (%d vs %d bytes)", f, len(a), len(b))
		}
	}
}

// TestStreamingLoadMatchesMaterializedLoad loads the same saved dataset two
// ways — the streaming batched path Load uses, and a reference path that
// materializes whole []T slices with ReadJSONL and ingests them through the
// public Add/Upsert calls — and asserts both stores re-save identical bytes.
func TestStreamingLoadMatchesMaterializedLoad(t *testing.T) {
	src := buildDifferentialStore()
	dir := t.TempDir()
	if err := src.Save(filepath.Join(dir, "orig")); err != nil {
		t.Fatal(err)
	}

	streamed, err := Load(filepath.Join(dir, "orig"))
	if err != nil {
		t.Fatal(err)
	}
	if err := streamed.Save(filepath.Join(dir, "streamed")); err != nil {
		t.Fatal(err)
	}
	compareDirs(t, filepath.Join(dir, "orig"), filepath.Join(dir, "streamed"))

	// Reference: materialize every file, then ingest.
	ref := New()
	readAll := func(name string, into func([]byte) error) {
		t.Helper()
		raw, err := os.ReadFile(filepath.Join(dir, "orig", name))
		if err != nil {
			t.Fatal(err)
		}
		if err := into(raw); err != nil {
			t.Fatal(err)
		}
	}
	readAll("tweets.jsonl", func(raw []byte) error {
		tweets, err := ReadJSONL[TweetRecord](bytes.NewReader(raw))
		for _, tw := range tweets {
			ref.AddTweet(tw)
		}
		return err
	})
	readAll("control.jsonl", func(raw []byte) error {
		ctl, err := ReadJSONL[ControlRecord](bytes.NewReader(raw))
		ref.AddControlBatch(ctl)
		return err
	})
	readAll("groups.jsonl", func(raw []byte) error {
		groups, err := ReadJSONL[*GroupRecord](bytes.NewReader(raw))
		for _, g := range groups {
			ref.groups.put(g)
		}
		return err
	})
	readAll("messages.jsonl", func(raw []byte) error {
		msgs, err := ReadJSONL[MessageRecord](bytes.NewReader(raw))
		ref.AddMessageBatch(msgs)
		return err
	})
	readAll("posts.jsonl", func(raw []byte) error {
		// Like Load, append verbatim: group records already carry the
		// posts' derived side effects.
		posts, err := ReadJSONL[PostRecord](bytes.NewReader(raw))
		ref.posts = append(ref.posts, posts...)
		return err
	})
	readAll("users.jsonl", func(raw []byte) error {
		users, err := ReadJSONL[UserRecord](bytes.NewReader(raw))
		ref.UpsertUserBatch(users)
		return err
	})
	if err := ref.Save(filepath.Join(dir, "materialized")); err != nil {
		t.Fatal(err)
	}
	compareDirs(t, filepath.Join(dir, "orig"), filepath.Join(dir, "materialized"))
}

// TestStreamJSONLReusesBatchBuffer pins the O(batch) memory contract of the
// streaming decoder: every flush is handed the same backing array, so load
// memory is one batch of decoded records regardless of file size.
func TestStreamJSONLReusesBatchBuffer(t *testing.T) {
	var buf bytes.Buffer
	const total, batchLen = 41, 4
	base := time.Date(2019, 4, 1, 0, 0, 0, 0, time.UTC)
	recs := make([]MessageRecord, total)
	for i := range recs {
		recs[i] = MessageRecord{Platform: platform.Telegram, GroupCode: "g",
			AuthorKey: uint64(i), SentAt: base, Type: platform.Text}
	}
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}

	batch := make([]MessageRecord, batchLen)
	first := &batch[0]
	var flushes, seen int
	err := streamJSONL(bytes.NewReader(buf.Bytes()), batch, func(got []MessageRecord) error {
		flushes++
		seen += len(got)
		if &got[0] != first {
			t.Fatalf("flush %d received a different backing array", flushes)
		}
		if len(got) > batchLen {
			t.Fatalf("flush %d has %d records, batch is %d", flushes, len(got), batchLen)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != total {
		t.Fatalf("streamed %d records, want %d", seen, total)
	}
	if want := (total + batchLen - 1) / batchLen; flushes != want {
		t.Fatalf("%d flushes, want %d", flushes, want)
	}
}

// TestLoadAllocationsStayBounded asserts the streaming load path's live
// memory tracks the store, not the file: loading a dataset must not retain
// a materialized []TweetRecord of the whole file on top of the columns.
// The bound is generous — it fails only if someone reintroduces whole-file
// materialization (which at this record count would at least double it).
func TestLoadAllocationsStayBounded(t *testing.T) {
	src := buildDifferentialStore()
	dir := t.TempDir()
	if err := src.Save(filepath.Join(dir, "d")); err != nil {
		t.Fatal(err)
	}
	warm, err := Load(filepath.Join(dir, "d")) // warm path caches
	if err != nil {
		t.Fatal(err)
	}
	before := liveHeap()
	loaded, err := Load(filepath.Join(dir, "d"))
	if err != nil {
		t.Fatal(err)
	}
	after := liveHeap()
	runtime.KeepAlive(warm)
	var live uint64
	if after > before {
		live = after - before
	}
	// The 300-tweet store is ~200KB columnar; a retained []TweetRecord +
	// strings for the whole file would add well over 100KB.
	const bound = 1 << 20
	if live > bound {
		t.Fatalf("streaming load retained %d live bytes, bound %d", live, bound)
	}
	_ = loaded
}
