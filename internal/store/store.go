// Package store holds the study's collected dataset: tweets, discovered
// group URLs, daily observations, joined-group data, messages, and observed
// users. Following the paper's ethics statement, phone numbers are never
// stored as such — only one-way SHA-256 hashes.
//
// Layout: every record family is stored columnar (struct-of-arrays; see
// columnar.go for tweets/control/messages, groupcols.go for groups and
// their observation series) with string fields interned to uint32 handles
// and high-cardinality text in byte arenas, so the paper-scale corpus
// (~2.2M tweets, ~8.3M messages, ~56K groups × 38 daily observations)
// fits in a fraction of the former slice-of-structs footprint. The tweet
// and post dedup indexes are compact open-addressing tables (ids.U64Map)
// instead of Go maps. Readers get list views (TweetList, ControlList,
// MessageList, GroupList, ObsList) that reconstruct record values on
// demand without allocating.
package store

import (
	"cmp"
	"crypto/sha256"
	"encoding/hex"
	"slices"
	"sort"
	"sync"
	"time"

	"msgscope/internal/ids"
	"msgscope/internal/platform"
)

// HashPhone returns the one-way hash under which a phone number is stored.
func HashPhone(phone string) string {
	h := sha256.Sum256([]byte(phone))
	return hex.EncodeToString(h[:])
}

// PhoneKey derives a stable 64-bit user key from a phone number (FNV-1a) so
// the same person observed via different surfaces (landing-page creator,
// group member) deduplicates to one UserRecord.
func PhoneKey(phone string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(phone); i++ {
		h ^= uint64(phone[i])
		h *= prime64
	}
	return h
}

// TweetSource records which collection path produced a tweet.
type TweetSource int

// Tweet sources; a tweet seen by both APIs carries both bits.
const (
	SourceSearch TweetSource = 1 << iota
	SourceStream
)

// TweetRecord is one collected tweet that carried a group URL.
type TweetRecord struct {
	ID        uint64            `json:"id"`
	UserID    string            `json:"user_id"`
	CreatedAt time.Time         `json:"created_at"`
	Lang      string            `json:"lang"`
	Hashtags  int               `json:"hashtags"`
	Mentions  int               `json:"mentions"`
	Retweet   bool              `json:"retweet"`
	Text      string            `json:"text"`
	Platform  platform.Platform `json:"platform"`
	GroupCode string            `json:"group_code"`
	Source    TweetSource       `json:"source"`
}

// ControlRecord is one control-stream tweet (features only; the control
// analysis never needs the text).
type ControlRecord struct {
	ID        uint64    `json:"id"`
	UserID    string    `json:"user_id"`
	CreatedAt time.Time `json:"created_at"`
	Lang      string    `json:"lang"`
	Hashtags  int       `json:"hashtags"`
	Mentions  int       `json:"mentions"`
	Retweet   bool      `json:"retweet"`
}

// GroupRecord is one discovered group URL with its discovery bookkeeping
// and the daily observation series.
type GroupRecord struct {
	Platform  platform.Platform `json:"platform"`
	Code      string            `json:"code"`
	Canonical string            `json:"canonical"`
	FirstSeen time.Time         `json:"first_seen"` // first share observed (any source)
	LastSeen  time.Time         `json:"last_seen"`
	Tweets    int               `json:"tweets"` // tweets sharing this URL
	// Cross-source discovery bookkeeping: which collection surfaces saw
	// this URL (the future-work second source writes SeenSocial).
	SeenTwitter bool `json:"seen_twitter,omitempty"`
	SeenSocial  bool `json:"seen_social,omitempty"`
	SocialPosts int  `json:"social_posts,omitempty"`

	Observations []Observation `json:"observations,omitempty"`

	// Joined-group data (zero unless the join phase sampled this group).
	Joined        bool      `json:"joined,omitempty"`
	JoinedAt      time.Time `json:"joined_at,omitempty"`
	CreatedAt     time.Time `json:"created_at,omitempty"` // from join or DC snowflake
	HiddenMembers bool      `json:"hidden_members,omitempty"`
	IsChannel     bool      `json:"is_channel,omitempty"`
	Channels      int       `json:"channels,omitempty"`
	MemberCount   int       `json:"member_count,omitempty"` // members at join
	CreatorKey    string    `json:"creator_key,omitempty"`  // member-visible creator

	// Deferred marks a group whose last pipeline request exhausted its
	// retry budget: it stays queued for the next sweep instead of being
	// silently dropped. DeferReason is the stage that deferred it — a
	// short stable constant ("monitor", "join", "collect"), never error
	// text (which may embed unstable detail such as ports).
	Deferred    bool   `json:"deferred,omitempty"`
	DeferReason string `json:"defer_reason,omitempty"`
}

// Observation is one daily metadata probe of a group URL.
type Observation struct {
	At             time.Time `json:"at"`
	Alive          bool      `json:"alive"`
	Title          string    `json:"title,omitempty"`
	Members        int       `json:"members,omitempty"`
	Online         int       `json:"online,omitempty"`
	IsChannel      bool      `json:"is_channel,omitempty"`
	CreatorPhoneH  string    `json:"creator_phone_hash,omitempty"`
	CreatorCountry string    `json:"creator_country,omitempty"`
	// CreatorKey identifies the group creator across groups without
	// exposing raw PII: the phone hash on WhatsApp, the inviter ID on
	// Discord. Empty when the platform hides the creator (Telegram
	// previews).
	CreatorKey string    `json:"creator_key,omitempty"`
	CreatedAt  time.Time `json:"created_at,omitempty"` // Discord snowflake date
}

// MessageRecord is one collected in-group message. AuthorKey is a
// platform-scoped stable identifier (user ID), never a raw phone number.
// Text is present only when the study collects message bodies (the
// toxicity extension needs it; the paper's figures do not).
type MessageRecord struct {
	Platform  platform.Platform    `json:"platform"`
	GroupCode string               `json:"group_code"`
	AuthorKey uint64               `json:"author_key"`
	SentAt    time.Time            `json:"sent_at"`
	Type      platform.MessageType `json:"type"`
	Text      string               `json:"text,omitempty"`
}

// UserRecord is one observed messaging-platform user and the PII the
// platform exposed about them.
type UserRecord struct {
	Platform  platform.Platform `json:"platform"`
	Key       uint64            `json:"key"`
	PhoneHash string            `json:"phone_hash,omitempty"`
	Country   string            `json:"country,omitempty"`
	Linked    []string          `json:"linked,omitempty"`
	// Creator marks users observed only as group creators on landing
	// pages (WhatsApp), as opposed to members of joined groups.
	Creator bool `json:"creator,omitempty"`
}

// Store is the in-memory dataset. It is safe for concurrent use.
//
// Concurrency model: the append-only log families each have one mutex
// (tweetMu covers tweets, control, posts, and their dedup maps; msgMu
// covers messages — an ordered log cannot be striped), while the keyed
// families (groups, users) are lock-striped: each key hashes to one of 64
// stripes with its own mutex, so the parallel search/collect fan-out and
// the 16-worker daily sweep only contend when touching the same stripe.
//
// Lock order: ordinary writers hold at most one stripe lock at a time and
// never nest family locks (cross-family writes such as AddTweet release
// tweetMu before touching group stripes), so they cannot deadlock. The
// operations that do hold several locks — the sorted-cache rebuilds and
// Snapshot — follow one total order:
//
//	tweetMu → msgMu → groups.cacheMu → group stripes (ascending)
//	        → users.cacheMu → user stripes (ascending)
//
// Every multi-lock path acquires a subsequence of that chain in that
// order, which is what makes Snapshot's "freeze everything at once" safe;
// the former claim that no method ever holds two family locks was wrong
// precisely there. A reader between the two phases of AddTweet can still
// observe a tweet whose group record has not landed yet; the report layer
// only reads after collection has quiesced (Snapshot), where every write
// has completed.
type Store struct {
	tweetMu sync.Mutex
	tweets  tweetCols
	control controlCols
	posts   []PostRecord

	seenTweets *ids.U64Map // tweet id -> row in tweets
	seenPosts  *ids.U64Map // post id -> seen (value unused)

	// Checkpoint dirty tracking (armed by OpenCheckpointWriter, both
	// guarded by tweetMu): rows below ckTweetMark were already written to
	// the checkpoint log, so a later source-bit merge records them in
	// ckDirtyTweets for re-emission. Nil when checkpointing is off.
	ckTweetMark   int
	ckDirtyTweets map[uint32]struct{}

	msgMu sync.Mutex
	msgs  msgCols

	groups *groupTable
	users  *userTable

	// spill is the segment-spilling driver (nil when no memory budget is
	// set); see spill.go and DESIGN.md §16.
	spill *spillState
}

// New returns an empty Store.
func New() *Store {
	userTab, langTab := ids.NewTable(), ids.NewTable()
	return &Store{
		tweets:     newTweetCols(userTab, langTab),
		control:    newControlCols(userTab, langTab),
		msgs:       newMsgCols(),
		seenTweets: ids.NewU64Map(0),
		seenPosts:  ids.NewU64Map(0),
		groups:     newGroupTable(),
		users:      newUserTable(),
	}
}

// groupKey and userKey are comparable struct keys: building one is
// allocation-free, unlike a "platform/code" string concatenation would be
// on every map probe of the hot ingest paths.
type groupKey struct {
	p    platform.Platform
	code string
}

type userKey struct {
	p   platform.Platform
	key uint64
}

// TweetIngest couples a tweet record with the canonical URL of its group,
// so a batch insert can record both under one lock acquisition.
type TweetIngest struct {
	Tweet     TweetRecord
	Canonical string
}

// AddTweet records a tweet carrying a group URL. If the tweet was already
// seen (by the other API), sources are merged and the duplicate dropped.
// It returns true if the group URL was never seen before (a discovery).
func (s *Store) AddTweet(t TweetRecord) (newGroup bool) {
	return s.AddTweetBatch([]TweetIngest{{Tweet: t}}) == 1
}

// AddTweetBatch records a batch of tweets in order, taking the tweet-family
// lock once and each touched group stripe once instead of a lock pair per
// tweet. Duplicates (already seen by the other API) get their source bits
// merged and are dropped. Canonical URLs are recorded for groups discovered
// by this batch. It returns how many group URLs were never seen before
// (discoveries).
func (s *Store) AddTweetBatch(batch []TweetIngest) (newGroups int) {
	if len(batch) == 0 {
		return 0
	}
	// Group updates to apply per stripe after the tweet family is done.
	type groupUpdate struct {
		stripe    uint32
		p         platform.Platform
		code      string
		at        time.Time
		canonical string
	}
	var updates []groupUpdate

	s.tweetMu.Lock()
	for i := range batch {
		t := &batch[i].Tweet
		if row, dup := s.seenTweets.Get(t.ID); dup {
			if s.tweets.orFlags(int(row), uint8(t.Source)&flagSourceMask) {
				if s.ckDirtyTweets != nil && int(row) < s.ckTweetMark {
					s.ckDirtyTweets[row] = struct{}{}
				}
			}
			continue
		}
		s.seenTweets.Put(t.ID, uint32(s.tweets.len()))
		s.tweets.append(t)
		if updates == nil {
			// Allocated only once a non-duplicate shows up, so re-ingesting
			// an already-seen batch stays allocation-free.
			updates = make([]groupUpdate, 0, len(batch))
		}
		st := stripeHash(t.GroupCode, t.Platform)
		updates = append(updates, groupUpdate{st, t.Platform, t.GroupCode, t.CreatedAt, batch[i].Canonical})
	}
	s.tweetMu.Unlock()

	if len(updates) == 0 {
		return 0
	}
	// Visit each touched stripe once, in ascending order. The stable sort
	// preserves batch order within a stripe, so a group first shared twice
	// in one batch keeps the first occurrence's canonical URL, as before.
	slices.SortStableFunc(updates, func(a, b groupUpdate) int {
		return cmp.Compare(a.stripe, b.stripe)
	})
	for lo := 0; lo < len(updates); {
		hi := lo
		for hi < len(updates) && updates[hi].stripe == updates[lo].stripe {
			hi++
		}
		st := &s.groups.stripes[updates[lo].stripe]
		st.mu.Lock()
		for i := lo; i < hi; i++ {
			u := &updates[i]
			row, isNew := s.groups.upsertLocked(st, u.p, u.code, u.at)
			st.flags[row] |= gfSeenTwitter
			st.tweets[row]++
			if isNew {
				newGroups++
				if u.canonical != "" {
					st.canonical[row] = st.tab.Handle(u.canonical)
				}
			}
		}
		st.mu.Unlock()
		lo = hi
	}
	return newGroups
}

// PostRecord is one collected secondary-network post carrying a group URL.
type PostRecord struct {
	ID        uint64            `json:"id"`
	Author    string            `json:"author"`
	CreatedAt time.Time         `json:"created_at"`
	Text      string            `json:"text"`
	Platform  platform.Platform `json:"platform"`
	GroupCode string            `json:"group_code"`
}

// AddPost records a secondary-network post; it returns true when the group
// URL was never seen before on ANY source. Unlike the former lazy map, the
// dedup index is allocated in New alongside seenTweets, so both paths
// share one construction story.
func (s *Store) AddPost(p PostRecord) (newGroup bool) {
	s.tweetMu.Lock()
	if _, dup := s.seenPosts.Get(p.ID); dup {
		s.tweetMu.Unlock()
		return false
	}
	s.seenPosts.Put(p.ID, 0)
	s.posts = append(s.posts, p)
	s.tweetMu.Unlock()

	_, st := s.groups.stripeFor(p.Platform, p.GroupCode)
	st.mu.Lock()
	row, isNew := s.groups.upsertLocked(st, p.Platform, p.GroupCode, p.CreatedAt)
	st.flags[row] |= gfSeenSocial
	st.socialPosts[row]++
	st.mu.Unlock()
	return isNew
}

// Posts returns all collected secondary-network posts.
func (s *Store) Posts() []PostRecord {
	s.tweetMu.Lock()
	defer s.tweetMu.Unlock()
	return s.posts
}

// AddControl records one control-stream tweet.
func (s *Store) AddControl(c ControlRecord) {
	s.tweetMu.Lock()
	s.control.append(&c)
	s.tweetMu.Unlock()
}

// AddControlBatch appends a batch of control tweets under one lock
// acquisition.
func (s *Store) AddControlBatch(batch []ControlRecord) {
	if len(batch) == 0 {
		return
	}
	s.tweetMu.Lock()
	for i := range batch {
		s.control.append(&batch[i])
	}
	s.tweetMu.Unlock()
}

// Group returns the record for a discovered group, with its observation
// series materialized (ok=false if unknown). The record is a value copy:
// mutating it does not touch the store, and its strings alias the store's
// interned memory.
func (s *Store) Group(p platform.Platform, code string) (GroupRecord, bool) {
	return s.groups.lookup(p, code)
}

// SetCanonical records the canonical URL of a group.
func (s *Store) SetCanonical(p platform.Platform, code, canonical string) {
	_, st := s.groups.stripeFor(p, code)
	st.mu.Lock()
	if row, ok := st.m[groupKey{p, code}]; ok {
		st.canonical[row] = st.tab.Handle(canonical)
	}
	st.mu.Unlock()
}

// AddObservation appends a daily probe to a group's series and clears any
// deferral. Unknown keys are a no-op, as with the mutation closures.
func (s *Store) AddObservation(p platform.Platform, code string, o Observation) {
	_, st := s.groups.stripeFor(p, code)
	st.mu.Lock()
	if row, ok := st.m[groupKey{p, code}]; ok {
		st.appendObsLocked(row, &o)
		st.flags[row] &^= gfDeferred
		st.deferReason[row] = 0
	}
	st.mu.Unlock()
}

// MarkJoined records join-phase metadata on a group.
func (s *Store) MarkJoined(p platform.Platform, code string, update func(*GroupRecord)) {
	s.groups.with(p, code, func(g *GroupRecord) {
		g.Joined = true
		g.Deferred = false
		g.DeferReason = ""
		update(g)
	})
}

// MarkDeferred flags a group whose request exhausted its retry budget, so
// it is retried on the next sweep rather than silently dropped. A later
// successful observation or join clears the flag. Written straight to the
// flag and reason columns: the sweep calls this on every fault, so it must
// stay allocation-free (reasons are short stable constants, interned once).
func (s *Store) MarkDeferred(p platform.Platform, code, reason string) {
	_, st := s.groups.stripeFor(p, code)
	st.mu.Lock()
	if row, ok := st.m[groupKey{p, code}]; ok {
		st.flags[row] |= gfDeferred
		st.deferReason[row] = st.tab.Handle(reason)
	}
	st.mu.Unlock()
}

// AddMessage records one collected message.
func (s *Store) AddMessage(m MessageRecord) {
	s.msgMu.Lock()
	s.msgs.append(&m)
	s.msgMu.Unlock()
}

// AddMessageBatch appends a batch of messages (e.g. one joined group's
// history) under one lock acquisition.
func (s *Store) AddMessageBatch(batch []MessageRecord) {
	if len(batch) == 0 {
		return
	}
	s.msgMu.Lock()
	for i := range batch {
		s.msgs.append(&batch[i])
	}
	// Message collection ingests an entire phase's worth of history in one
	// engine call, so waiting for the next boundary SpillCheck would let the
	// heap blow far past the budget; seal mid-ingest once this family alone
	// holds half of it. Segment boundaries never affect row content or
	// order, so output determinism is untouched by when this fires.
	if sp := s.spill; sp != nil && sp.cfg.Budget > 0 && s.msgs.heapBytes() > sp.cfg.Budget/2 {
		if err := s.sealMessagesLocked(); err != nil {
			sp.fail(err)
		}
	}
	s.msgMu.Unlock()
}

// UpsertUser merges an observed user's PII into the dataset.
func (s *Store) UpsertUser(u UserRecord) {
	s.users.upsert(&u)
}

// UpsertUserBatch merges a batch of observed users, locking each user's
// stripe as it goes. Merging is commutative across batches (fields fill
// in, Linked accumulates as a set, Creator only ever clears), so
// concurrent batches land in the same final state regardless of
// interleaving.
func (s *Store) UpsertUserBatch(batch []UserRecord) {
	for i := range batch {
		s.users.upsert(&batch[i])
	}
}

func mergeStrings(a, b []string) []string {
	set := map[string]struct{}{}
	for _, s := range a {
		set[s] = struct{}{}
	}
	for _, s := range b {
		set[s] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Tweets returns a read-only view of the collected platform tweets, in
// collection order.
func (s *Store) Tweets() TweetList {
	s.tweetMu.Lock()
	defer s.tweetMu.Unlock()
	return TweetList{c: s.tweets.view(), all: true}
}

// Control returns a read-only view of the control tweets.
func (s *Store) Control() ControlList {
	s.tweetMu.Lock()
	defer s.tweetMu.Unlock()
	return ControlList{c: s.control.view()}
}

// Groups returns a view of all discovered groups, sorted by platform then
// code for deterministic iteration. The view resolves a packed (stripe,
// row) ref index against per-stripe column snapshots, so taking one is
// O(stripes), not O(N).
func (s *Store) Groups() GroupList {
	return s.groups.groups()
}

// GroupsOf returns the view of one platform's discovered groups, sorted by
// code, served from the per-platform partition of the group index.
func (s *Store) GroupsOf(p platform.Platform) GroupList {
	return s.groups.groupsOf(p)
}

// Messages returns a read-only view of all collected messages.
func (s *Store) Messages() MessageList {
	s.msgMu.Lock()
	defer s.msgMu.Unlock()
	return MessageList{c: s.msgs.view(), all: true}
}

// Users returns all observed users, sorted by platform then key. Each call
// materializes fresh records from the columnar family (strings stay
// shared), so callers must not expect pointer identity across calls.
func (s *Store) Users() []*UserRecord {
	return s.users.users()
}

// Counts summarizes the dataset per platform (the raw material of Table 2).
type Counts struct {
	Tweets       int
	TweetUsers   int
	GroupURLs    int
	JoinedGroups int
	Messages     int
	MessageUsers int
}

// CountsFor computes the Table 2 row of one platform. Each record family
// is read under its own lock; the counts are mutually consistent once
// collection has quiesced (the only time the report layer reads them).
// Distinct users are counted by interned handle, which is cheaper than
// hashing strings and bijective with them.
func (s *Store) CountsFor(p platform.Platform) Counts {
	var c Counts

	s.tweetMu.Lock()
	tweetUsers := map[uint32]struct{}{}
	for i, n := 0, s.tweets.len(); i < n; i++ {
		if s.tweets.platAt(i) != uint8(p) {
			continue
		}
		c.Tweets++
		tweetUsers[s.tweets.userHandle(i)] = struct{}{}
	}
	s.tweetMu.Unlock()
	c.TweetUsers = len(tweetUsers)

	c.GroupURLs, c.JoinedGroups = s.groups.countFor(p)

	s.msgMu.Lock()
	msgUsers := map[uint64]struct{}{}
	for i, n := 0, s.msgs.len(); i < n; i++ {
		if s.msgs.platAt(i) != uint8(p) {
			continue
		}
		c.Messages++
		msgUsers[s.msgs.authorKey(i)] = struct{}{}
	}
	s.msgMu.Unlock()
	c.MessageUsers = len(msgUsers)
	return c
}
