// Package store holds the study's collected dataset: tweets, discovered
// group URLs, daily observations, joined-group data, messages, and observed
// users. Following the paper's ethics statement, phone numbers are never
// stored as such — only one-way SHA-256 hashes.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"sync"
	"time"

	"msgscope/internal/platform"
)

// HashPhone returns the one-way hash under which a phone number is stored.
func HashPhone(phone string) string {
	h := sha256.Sum256([]byte(phone))
	return hex.EncodeToString(h[:])
}

// PhoneKey derives a stable 64-bit user key from a phone number (FNV-1a) so
// the same person observed via different surfaces (landing-page creator,
// group member) deduplicates to one UserRecord.
func PhoneKey(phone string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(phone); i++ {
		h ^= uint64(phone[i])
		h *= prime64
	}
	return h
}

// TweetSource records which collection path produced a tweet.
type TweetSource int

// Tweet sources; a tweet seen by both APIs carries both bits.
const (
	SourceSearch TweetSource = 1 << iota
	SourceStream
)

// TweetRecord is one collected tweet that carried a group URL.
type TweetRecord struct {
	ID        uint64            `json:"id"`
	UserID    string            `json:"user_id"`
	CreatedAt time.Time         `json:"created_at"`
	Lang      string            `json:"lang"`
	Hashtags  int               `json:"hashtags"`
	Mentions  int               `json:"mentions"`
	Retweet   bool              `json:"retweet"`
	Text      string            `json:"text"`
	Platform  platform.Platform `json:"platform"`
	GroupCode string            `json:"group_code"`
	Source    TweetSource       `json:"source"`
}

// ControlRecord is one control-stream tweet (features only; the control
// analysis never needs the text).
type ControlRecord struct {
	ID        uint64    `json:"id"`
	UserID    string    `json:"user_id"`
	CreatedAt time.Time `json:"created_at"`
	Lang      string    `json:"lang"`
	Hashtags  int       `json:"hashtags"`
	Mentions  int       `json:"mentions"`
	Retweet   bool      `json:"retweet"`
}

// GroupRecord is one discovered group URL with its discovery bookkeeping
// and the daily observation series.
type GroupRecord struct {
	Platform  platform.Platform `json:"platform"`
	Code      string            `json:"code"`
	Canonical string            `json:"canonical"`
	FirstSeen time.Time         `json:"first_seen"` // first share observed (any source)
	LastSeen  time.Time         `json:"last_seen"`
	Tweets    int               `json:"tweets"` // tweets sharing this URL
	// Cross-source discovery bookkeeping: which collection surfaces saw
	// this URL (the future-work second source writes SeenSocial).
	SeenTwitter bool `json:"seen_twitter,omitempty"`
	SeenSocial  bool `json:"seen_social,omitempty"`
	SocialPosts int  `json:"social_posts,omitempty"`

	Observations []Observation `json:"observations,omitempty"`

	// Joined-group data (zero unless the join phase sampled this group).
	Joined        bool      `json:"joined,omitempty"`
	JoinedAt      time.Time `json:"joined_at,omitempty"`
	CreatedAt     time.Time `json:"created_at,omitempty"` // from join or DC snowflake
	HiddenMembers bool      `json:"hidden_members,omitempty"`
	IsChannel     bool      `json:"is_channel,omitempty"`
	Channels      int       `json:"channels,omitempty"`
	MemberCount   int       `json:"member_count,omitempty"` // members at join
	CreatorKey    string    `json:"creator_key,omitempty"`  // member-visible creator

	// Deferred marks a group whose last pipeline request exhausted its
	// retry budget: it stays queued for the next sweep instead of being
	// silently dropped. DeferReason is the stage that deferred it — a
	// short stable constant ("monitor", "join", "collect"), never error
	// text (which may embed unstable detail such as ports).
	Deferred    bool   `json:"deferred,omitempty"`
	DeferReason string `json:"defer_reason,omitempty"`
}

// Observation is one daily metadata probe of a group URL.
type Observation struct {
	At             time.Time `json:"at"`
	Alive          bool      `json:"alive"`
	Title          string    `json:"title,omitempty"`
	Members        int       `json:"members,omitempty"`
	Online         int       `json:"online,omitempty"`
	IsChannel      bool      `json:"is_channel,omitempty"`
	CreatorPhoneH  string    `json:"creator_phone_hash,omitempty"`
	CreatorCountry string    `json:"creator_country,omitempty"`
	// CreatorKey identifies the group creator across groups without
	// exposing raw PII: the phone hash on WhatsApp, the inviter ID on
	// Discord. Empty when the platform hides the creator (Telegram
	// previews).
	CreatorKey string    `json:"creator_key,omitempty"`
	CreatedAt  time.Time `json:"created_at,omitempty"` // Discord snowflake date
}

// MessageRecord is one collected in-group message. AuthorKey is a
// platform-scoped stable identifier (user ID), never a raw phone number.
// Text is present only when the study collects message bodies (the
// toxicity extension needs it; the paper's figures do not).
type MessageRecord struct {
	Platform  platform.Platform    `json:"platform"`
	GroupCode string               `json:"group_code"`
	AuthorKey uint64               `json:"author_key"`
	SentAt    time.Time            `json:"sent_at"`
	Type      platform.MessageType `json:"type"`
	Text      string               `json:"text,omitempty"`
}

// UserRecord is one observed messaging-platform user and the PII the
// platform exposed about them.
type UserRecord struct {
	Platform  platform.Platform `json:"platform"`
	Key       uint64            `json:"key"`
	PhoneHash string            `json:"phone_hash,omitempty"`
	Country   string            `json:"country,omitempty"`
	Linked    []string          `json:"linked,omitempty"`
	// Creator marks users observed only as group creators on landing
	// pages (WhatsApp), as opposed to members of joined groups.
	Creator bool `json:"creator,omitempty"`
}

// Store is the in-memory dataset. It is safe for concurrent use.
//
// Concurrency model: instead of one global mutex, the dataset is split into
// four independently locked families, so the pipeline's concurrent writers
// — search workers appending tweets, stream drains appending control
// records, the 16-worker daily sweep appending observations and upserting
// users, and the join phase appending messages — never serialize on each
// other's locks:
//
//	tweetMu: tweets, control, posts, and their dedup maps
//	groupMu: groups (incl. observations and join metadata) and the sorted
//	         group indexes
//	userMu:  users and the sorted user index
//	msgMu:   msgs
//
// No method ever holds two family locks at once (cross-family writes such
// as AddTweet release tweetMu before taking groupMu), so there is no lock
// ordering to maintain and no deadlock potential. The price is that a
// reader between the two phases of AddTweet can observe a tweet whose
// group record has not landed yet; the report layer only reads after
// collection has quiesced (Snapshot), where every write has completed.
type Store struct {
	tweetMu sync.Mutex
	tweets  []TweetRecord
	control []ControlRecord
	posts   []PostRecord

	seenTweets map[uint64]int // tweet id -> index in tweets
	seenPosts  map[uint64]struct{}

	groupMu sync.Mutex
	groups  map[groupKey]*GroupRecord
	// Sorted read caches, rebuilt lazily when the group/user sets change.
	// Groups, GroupsOf, and Users hand out copies of these so callers may
	// reorder what they receive (the join phase shuffles its candidates).
	sortedGroups []*GroupRecord
	groupsByPlat map[platform.Platform][]*GroupRecord
	groupsDirty  bool

	userMu      sync.Mutex
	users       map[userKey]*UserRecord
	sortedUsers []*UserRecord
	usersDirty  bool

	msgMu sync.Mutex
	msgs  []MessageRecord
}

// New returns an empty Store.
func New() *Store {
	return &Store{
		groups:     map[groupKey]*GroupRecord{},
		users:      map[userKey]*UserRecord{},
		seenTweets: map[uint64]int{},
	}
}

// groupKey and userKey are comparable struct keys: building one is
// allocation-free, unlike the former "platform/code" string concatenation
// that allocated on every map probe of the hot ingest paths.
type groupKey struct {
	p    platform.Platform
	code string
}

type userKey struct {
	p   platform.Platform
	key uint64
}

// TweetIngest couples a tweet record with the canonical URL of its group,
// so a batch insert can record both under one lock acquisition.
type TweetIngest struct {
	Tweet     TweetRecord
	Canonical string
}

// AddTweet records a tweet carrying a group URL. If the tweet was already
// seen (by the other API), sources are merged and the duplicate dropped.
// It returns true if the group URL was never seen before (a discovery).
func (s *Store) AddTweet(t TweetRecord) (newGroup bool) {
	return s.AddTweetBatch([]TweetIngest{{Tweet: t}}) == 1
}

// AddTweetBatch records a batch of tweets in order, taking each family lock
// once instead of once per tweet. Duplicates (already seen by the other
// API) get their source bits merged and are dropped. Canonical URLs are
// recorded for groups discovered by this batch. It returns how many group
// URLs were never seen before (discoveries).
func (s *Store) AddTweetBatch(batch []TweetIngest) (newGroups int) {
	if len(batch) == 0 {
		return 0
	}
	// Group updates to apply under groupMu after the tweet family is done.
	type groupUpdate struct {
		p         platform.Platform
		code      string
		at        time.Time
		canonical string
	}
	var updates []groupUpdate

	s.tweetMu.Lock()
	for i := range batch {
		t := &batch[i].Tweet
		if j, dup := s.seenTweets[t.ID]; dup {
			s.tweets[j].Source |= t.Source
			continue
		}
		s.seenTweets[t.ID] = len(s.tweets)
		s.tweets = append(s.tweets, *t)
		if updates == nil {
			// Allocated only once a non-duplicate shows up, so re-ingesting
			// an already-seen batch stays allocation-free.
			updates = make([]groupUpdate, 0, len(batch))
		}
		updates = append(updates, groupUpdate{t.Platform, t.GroupCode, t.CreatedAt, batch[i].Canonical})
	}
	s.tweetMu.Unlock()

	if len(updates) == 0 {
		return 0
	}
	s.groupMu.Lock()
	for _, u := range updates {
		g, isNew := s.groupForLocked(u.p, u.code, u.at)
		g.SeenTwitter = true
		g.Tweets++
		if isNew {
			newGroups++
			if u.canonical != "" {
				g.Canonical = u.canonical
			}
		}
	}
	s.groupMu.Unlock()
	return newGroups
}

// groupForLocked returns the group record, creating it on first sight and
// widening its first/last-seen window. Callers hold s.groupMu.
func (s *Store) groupForLocked(p platform.Platform, code string, at time.Time) (*GroupRecord, bool) {
	k := groupKey{p, code}
	g, ok := s.groups[k]
	isNew := false
	if !ok {
		g = &GroupRecord{Platform: p, Code: code, FirstSeen: at, LastSeen: at}
		s.groups[k] = g
		s.groupsDirty = true
		isNew = true
	}
	if at.Before(g.FirstSeen) {
		g.FirstSeen = at
	}
	if at.After(g.LastSeen) {
		g.LastSeen = at
	}
	return g, isNew
}

// PostRecord is one collected secondary-network post carrying a group URL.
type PostRecord struct {
	ID        uint64            `json:"id"`
	Author    string            `json:"author"`
	CreatedAt time.Time         `json:"created_at"`
	Text      string            `json:"text"`
	Platform  platform.Platform `json:"platform"`
	GroupCode string            `json:"group_code"`
}

// AddPost records a secondary-network post; it returns true when the group
// URL was never seen before on ANY source.
func (s *Store) AddPost(p PostRecord) (newGroup bool) {
	s.tweetMu.Lock()
	if s.seenPosts == nil {
		s.seenPosts = map[uint64]struct{}{}
	}
	if _, dup := s.seenPosts[p.ID]; dup {
		s.tweetMu.Unlock()
		return false
	}
	s.seenPosts[p.ID] = struct{}{}
	s.posts = append(s.posts, p)
	s.tweetMu.Unlock()

	s.groupMu.Lock()
	g, isNew := s.groupForLocked(p.Platform, p.GroupCode, p.CreatedAt)
	g.SeenSocial = true
	g.SocialPosts++
	s.groupMu.Unlock()
	return isNew
}

// Posts returns all collected secondary-network posts.
func (s *Store) Posts() []PostRecord {
	s.tweetMu.Lock()
	defer s.tweetMu.Unlock()
	return s.posts
}

// AddControl records one control-stream tweet.
func (s *Store) AddControl(c ControlRecord) {
	s.tweetMu.Lock()
	s.control = append(s.control, c)
	s.tweetMu.Unlock()
}

// AddControlBatch appends a batch of control tweets under one lock
// acquisition.
func (s *Store) AddControlBatch(batch []ControlRecord) {
	if len(batch) == 0 {
		return
	}
	s.tweetMu.Lock()
	s.control = append(s.control, batch...)
	s.tweetMu.Unlock()
}

// Group returns the record for a discovered group (nil if unknown).
func (s *Store) Group(p platform.Platform, code string) *GroupRecord {
	s.groupMu.Lock()
	defer s.groupMu.Unlock()
	return s.groups[groupKey{p, code}]
}

// SetCanonical records the canonical URL of a group.
func (s *Store) SetCanonical(p platform.Platform, code, canonical string) {
	s.groupMu.Lock()
	if g := s.groups[groupKey{p, code}]; g != nil {
		g.Canonical = canonical
	}
	s.groupMu.Unlock()
}

// AddObservation appends a daily probe to a group's series.
func (s *Store) AddObservation(p platform.Platform, code string, o Observation) {
	s.groupMu.Lock()
	if g := s.groups[groupKey{p, code}]; g != nil {
		g.Observations = append(g.Observations, o)
		g.Deferred = false
		g.DeferReason = ""
	}
	s.groupMu.Unlock()
}

// MarkJoined records join-phase metadata on a group.
func (s *Store) MarkJoined(p platform.Platform, code string, update func(*GroupRecord)) {
	s.groupMu.Lock()
	if g := s.groups[groupKey{p, code}]; g != nil {
		g.Joined = true
		g.Deferred = false
		g.DeferReason = ""
		update(g)
	}
	s.groupMu.Unlock()
}

// MarkDeferred flags a group whose request exhausted its retry budget, so
// it is retried on the next sweep rather than silently dropped. A later
// successful observation or join clears the flag.
func (s *Store) MarkDeferred(p platform.Platform, code, reason string) {
	s.groupMu.Lock()
	if g := s.groups[groupKey{p, code}]; g != nil {
		g.Deferred = true
		g.DeferReason = reason
	}
	s.groupMu.Unlock()
}

// AddMessage records one collected message.
func (s *Store) AddMessage(m MessageRecord) {
	s.msgMu.Lock()
	s.msgs = append(s.msgs, m)
	s.msgMu.Unlock()
}

// AddMessageBatch appends a batch of messages (e.g. one joined group's
// history) under one lock acquisition.
func (s *Store) AddMessageBatch(batch []MessageRecord) {
	if len(batch) == 0 {
		return
	}
	s.msgMu.Lock()
	s.msgs = append(s.msgs, batch...)
	s.msgMu.Unlock()
}

// UpsertUser merges an observed user's PII into the dataset.
func (s *Store) UpsertUser(u UserRecord) {
	s.userMu.Lock()
	s.upsertUserLocked(u)
	s.userMu.Unlock()
}

// UpsertUserBatch merges a batch of observed users under one lock
// acquisition. Merging is commutative across batches (fields fill in,
// Linked accumulates as a set, Creator only ever clears), so concurrent
// batches land in the same final state regardless of interleaving.
func (s *Store) UpsertUserBatch(batch []UserRecord) {
	if len(batch) == 0 {
		return
	}
	s.userMu.Lock()
	for i := range batch {
		s.upsertUserLocked(batch[i])
	}
	s.userMu.Unlock()
}

func (s *Store) upsertUserLocked(u UserRecord) {
	k := userKey{u.Platform, u.Key}
	cur, ok := s.users[k]
	if !ok {
		cp := u
		s.users[k] = &cp
		s.usersDirty = true
		return
	}
	if u.PhoneHash != "" {
		cur.PhoneHash = u.PhoneHash
	}
	if u.Country != "" {
		cur.Country = u.Country
	}
	if len(u.Linked) > 0 {
		cur.Linked = mergeStrings(cur.Linked, u.Linked)
	}
	// A user seen as a member is no longer creator-only.
	if !u.Creator {
		cur.Creator = false
	}
}

func mergeStrings(a, b []string) []string {
	set := map[string]struct{}{}
	for _, s := range a {
		set[s] = struct{}{}
	}
	for _, s := range b {
		set[s] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Tweets returns the collected platform tweets (shared slice; do not
// mutate).
func (s *Store) Tweets() []TweetRecord {
	s.tweetMu.Lock()
	defer s.tweetMu.Unlock()
	return s.tweets
}

// Control returns the control tweets.
func (s *Store) Control() []ControlRecord {
	s.tweetMu.Lock()
	defer s.tweetMu.Unlock()
	return s.control
}

// rebuildGroupsLocked refreshes the sorted slice and per-platform
// partitions after the group set changed. Callers hold s.groupMu.
func (s *Store) rebuildGroupsLocked() {
	if !s.groupsDirty && s.sortedGroups != nil {
		return
	}
	out := make([]*GroupRecord, 0, len(s.groups))
	for _, g := range s.groups {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Platform != out[j].Platform {
			return out[i].Platform < out[j].Platform
		}
		return out[i].Code < out[j].Code
	})
	byPlat := map[platform.Platform][]*GroupRecord{}
	for _, g := range out {
		byPlat[g.Platform] = append(byPlat[g.Platform], g)
	}
	s.sortedGroups = out
	s.groupsByPlat = byPlat
	s.groupsDirty = false
}

// Groups returns all discovered groups, sorted by platform then code for
// deterministic iteration. The slice is the caller's to reorder; it is
// copied from an index kept sorted across calls, so repeated reads cost
// O(N) instead of O(N log N).
func (s *Store) Groups() []*GroupRecord {
	s.groupMu.Lock()
	defer s.groupMu.Unlock()
	s.rebuildGroupsLocked()
	return append([]*GroupRecord(nil), s.sortedGroups...)
}

// GroupsOf returns the discovered groups of one platform, sorted by code,
// served from the per-platform partition of the group index.
func (s *Store) GroupsOf(p platform.Platform) []*GroupRecord {
	s.groupMu.Lock()
	defer s.groupMu.Unlock()
	s.rebuildGroupsLocked()
	return append([]*GroupRecord(nil), s.groupsByPlat[p]...)
}

// Messages returns all collected messages.
func (s *Store) Messages() []MessageRecord {
	s.msgMu.Lock()
	defer s.msgMu.Unlock()
	return s.msgs
}

// rebuildUsersLocked refreshes the sorted user index. Callers hold
// s.userMu.
func (s *Store) rebuildUsersLocked() {
	if !s.usersDirty && s.sortedUsers != nil {
		return
	}
	out := make([]*UserRecord, 0, len(s.users))
	for _, u := range s.users {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Platform != out[j].Platform {
			return out[i].Platform < out[j].Platform
		}
		return out[i].Key < out[j].Key
	})
	s.sortedUsers = out
	s.usersDirty = false
}

// Users returns all observed users, sorted by platform then key. As with
// Groups, the returned slice is a copy of a persistent sorted index.
func (s *Store) Users() []*UserRecord {
	s.userMu.Lock()
	defer s.userMu.Unlock()
	s.rebuildUsersLocked()
	return append([]*UserRecord(nil), s.sortedUsers...)
}

// Counts summarizes the dataset per platform (the raw material of Table 2).
type Counts struct {
	Tweets       int
	TweetUsers   int
	GroupURLs    int
	JoinedGroups int
	Messages     int
	MessageUsers int
}

// CountsFor computes the Table 2 row of one platform. Each record family
// is read under its own lock; the counts are mutually consistent once
// collection has quiesced (the only time the report layer reads them).
func (s *Store) CountsFor(p platform.Platform) Counts {
	var c Counts

	s.tweetMu.Lock()
	tweetUsers := map[string]struct{}{}
	for i := range s.tweets {
		if s.tweets[i].Platform != p {
			continue
		}
		c.Tweets++
		tweetUsers[s.tweets[i].UserID] = struct{}{}
	}
	s.tweetMu.Unlock()
	c.TweetUsers = len(tweetUsers)

	s.groupMu.Lock()
	for _, g := range s.groups {
		if g.Platform != p {
			continue
		}
		c.GroupURLs++
		if g.Joined {
			c.JoinedGroups++
		}
	}
	s.groupMu.Unlock()

	s.msgMu.Lock()
	msgUsers := map[uint64]struct{}{}
	for i := range s.msgs {
		if s.msgs[i].Platform != p {
			continue
		}
		c.Messages++
		msgUsers[s.msgs[i].AuthorKey] = struct{}{}
	}
	s.msgMu.Unlock()
	c.MessageUsers = len(msgUsers)
	return c
}
