//go:build unix

package store

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-write PRIVATE. Reads serve from the
// page cache under kernel eviction (this is the whole point of the spill
// tier: cold columns cost page cache, not heap), while the rare in-place
// mutations of frozen rows — tweet source-flag merges, observation
// next-pointer welds — copy-on-write the touched page instead of dirtying
// the file, so segments on disk stay immutable after the rename that
// published them.
func mapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_PRIVATE)
}

func unmapFile(data []byte) error {
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
