package store

import (
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"msgscope/internal/platform"
)

var t0 = time.Date(2020, 4, 8, 12, 0, 0, 0, time.UTC)

func tweet(id uint64, p platform.Platform, code string, src TweetSource) TweetRecord {
	return TweetRecord{
		ID: id, UserID: "u1", CreatedAt: t0, Lang: "en",
		Platform: p, GroupCode: code, Source: src,
	}
}

func TestAddTweetDiscoversGroupsOnce(t *testing.T) {
	s := New()
	if !s.AddTweet(tweet(1, platform.WhatsApp, "g1", SourceSearch)) {
		t.Fatal("first tweet should discover the group")
	}
	if s.AddTweet(tweet(2, platform.WhatsApp, "g1", SourceSearch)) {
		t.Fatal("second tweet should not rediscover")
	}
	g, ok := s.Group(platform.WhatsApp, "g1")
	if !ok || g.Tweets != 2 {
		t.Fatalf("group record wrong: %+v", g)
	}
}

func TestAddTweetMergesSources(t *testing.T) {
	s := New()
	s.AddTweet(tweet(1, platform.Discord, "g", SourceSearch))
	s.AddTweet(tweet(1, platform.Discord, "g", SourceStream)) // duplicate ID
	tweets := s.Tweets()
	if tweets.Len() != 1 {
		t.Fatalf("%d tweets stored, want 1", tweets.Len())
	}
	if tweets.At(0).Source != SourceSearch|SourceStream {
		t.Fatalf("sources not merged: %v", tweets.At(0).Source)
	}
	if g, _ := s.Group(platform.Discord, "g"); g.Tweets != 1 {
		t.Fatalf("duplicate inflated tweet count: %d", g.Tweets)
	}
}

func TestFirstLastSeen(t *testing.T) {
	s := New()
	later := tweet(2, platform.Telegram, "g", SourceSearch)
	later.CreatedAt = t0.Add(time.Hour)
	s.AddTweet(later)
	earlier := tweet(1, platform.Telegram, "g", SourceSearch)
	s.AddTweet(earlier)
	g, _ := s.Group(platform.Telegram, "g")
	if !g.FirstSeen.Equal(t0) || !g.LastSeen.Equal(t0.Add(time.Hour)) {
		t.Fatalf("first/last wrong: %+v", g)
	}
}

func TestObservationsAndJoin(t *testing.T) {
	s := New()
	s.AddTweet(tweet(1, platform.WhatsApp, "g", SourceStream))
	s.AddObservation(platform.WhatsApp, "g", Observation{At: t0, Alive: true, Members: 5})
	s.MarkJoined(platform.WhatsApp, "g", func(g *GroupRecord) {
		g.JoinedAt = t0.Add(time.Hour)
		g.MemberCount = 5
	})
	g, _ := s.Group(platform.WhatsApp, "g")
	if len(g.Observations) != 1 || !g.Joined || g.MemberCount != 5 {
		t.Fatalf("group record wrong: %+v", g)
	}
	// Unknown groups are a no-op, not a panic.
	s.AddObservation(platform.WhatsApp, "nope", Observation{})
	s.MarkJoined(platform.WhatsApp, "nope", func(*GroupRecord) {})
}

func TestUpsertUserMerging(t *testing.T) {
	s := New()
	s.UpsertUser(UserRecord{Platform: platform.WhatsApp, Key: 1, PhoneHash: "h", Country: "BR", Creator: true})
	s.UpsertUser(UserRecord{Platform: platform.WhatsApp, Key: 1}) // seen as member later
	users := s.Users()
	if len(users) != 1 {
		t.Fatalf("%d users, want 1", len(users))
	}
	u := users[0]
	if u.PhoneHash != "h" || u.Country != "BR" {
		t.Fatalf("merge lost fields: %+v", u)
	}
	if u.Creator {
		t.Fatal("member sighting should clear creator-only flag")
	}
}

func TestUpsertUserLinkedMerge(t *testing.T) {
	s := New()
	s.UpsertUser(UserRecord{Platform: platform.Discord, Key: 2, Linked: []string{"Twitch"}})
	s.UpsertUser(UserRecord{Platform: platform.Discord, Key: 2, Linked: []string{"Steam", "Twitch"}})
	u := s.Users()[0]
	if len(u.Linked) != 2 {
		t.Fatalf("linked merge wrong: %v", u.Linked)
	}
}

func TestCountsFor(t *testing.T) {
	s := New()
	s.AddTweet(tweet(1, platform.Telegram, "a", SourceSearch))
	s.AddTweet(tweet(2, platform.Telegram, "b", SourceSearch))
	s.AddMessage(MessageRecord{Platform: platform.Telegram, GroupCode: "a", AuthorKey: 9, SentAt: t0})
	s.AddMessage(MessageRecord{Platform: platform.Telegram, GroupCode: "a", AuthorKey: 9, SentAt: t0})
	c := s.CountsFor(platform.Telegram)
	if c.Tweets != 2 || c.GroupURLs != 2 || c.Messages != 2 || c.MessageUsers != 1 {
		t.Fatalf("counts wrong: %+v", c)
	}
	if z := s.CountsFor(platform.Discord); z.Tweets != 0 {
		t.Fatalf("cross-platform leak: %+v", z)
	}
}

func TestGroupsSortedDeterministically(t *testing.T) {
	s := New()
	s.AddTweet(tweet(1, platform.Discord, "zz", SourceSearch))
	s.AddTweet(tweet(2, platform.WhatsApp, "aa", SourceSearch))
	s.AddTweet(tweet(3, platform.Discord, "aa", SourceSearch))
	gs := s.Groups()
	if gs.Len() != 3 {
		t.Fatalf("%d groups", gs.Len())
	}
	if gs.At(0).Platform != platform.WhatsApp || gs.At(1).Code != "aa" || gs.At(2).Code != "zz" {
		t.Fatalf("order wrong: %v %v %v", gs.At(0), gs.At(1), gs.At(2))
	}
}

func TestHashPhoneOneWayAndStable(t *testing.T) {
	a := HashPhone("+5511999999999")
	b := HashPhone("+5511999999999")
	c := HashPhone("+5511999999998")
	if a != b {
		t.Fatal("hash unstable")
	}
	if a == c {
		t.Fatal("hash collision on different phones")
	}
	if len(a) != 64 {
		t.Fatalf("hash length %d", len(a))
	}
}

func TestPhoneKeyProperty(t *testing.T) {
	f := func(a, b string) bool {
		if a == b {
			return PhoneKey(a) == PhoneKey(b)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	s := New()
	s.AddTweet(tweet(1, platform.WhatsApp, "g1", SourceSearch))
	s.AddTweet(tweet(2, platform.Discord, "g2", SourceStream))
	s.AddControl(ControlRecord{ID: 9, UserID: "c", CreatedAt: t0, Lang: "ja", Hashtags: 1})
	s.AddObservation(platform.WhatsApp, "g1", Observation{At: t0, Alive: true, Members: 7})
	s.MarkJoined(platform.WhatsApp, "g1", func(g *GroupRecord) { g.MemberCount = 7 })
	s.AddMessage(MessageRecord{Platform: platform.WhatsApp, GroupCode: "g1", AuthorKey: 3, SentAt: t0, Type: platform.Sticker})
	s.UpsertUser(UserRecord{Platform: platform.WhatsApp, Key: 3, PhoneHash: "h", Country: "BR"})

	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Tweets().Len() != 2 || loaded.Control().Len() != 1 ||
		loaded.Messages().Len() != 1 || len(loaded.Users()) != 1 {
		t.Fatalf("loaded counts wrong: %d %d %d %d", loaded.Tweets().Len(),
			loaded.Control().Len(), loaded.Messages().Len(), len(loaded.Users()))
	}
	g, ok := loaded.Group(platform.WhatsApp, "g1")
	if !ok || !g.Joined || g.MemberCount != 7 || len(g.Observations) != 1 {
		t.Fatalf("loaded group wrong: %+v", g)
	}
	if loaded.Messages().At(0).Type != platform.Sticker {
		t.Fatal("message type lost")
	}
	if loaded.Users()[0].PhoneHash != "h" {
		t.Fatal("user phone hash lost")
	}
}

func TestLoadMissingDirIsEmpty(t *testing.T) {
	s, err := Load(filepath.Join(t.TempDir(), "missing"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Tweets().Len() != 0 {
		t.Fatal("missing dir should load empty")
	}
}

func TestAddPostDiscoveryAndDedup(t *testing.T) {
	s := New()
	p1 := PostRecord{ID: 1, Author: "a", CreatedAt: t0, Platform: platform.Discord, GroupCode: "g"}
	if !s.AddPost(p1) {
		t.Fatal("first post should discover the group")
	}
	if s.AddPost(p1) {
		t.Fatal("duplicate post rediscovered")
	}
	if s.AddPost(PostRecord{ID: 2, Author: "b", CreatedAt: t0, Platform: platform.Discord, GroupCode: "g"}) {
		t.Fatal("second post on same group should not rediscover")
	}
	g, _ := s.Group(platform.Discord, "g")
	if !g.SeenSocial || g.SeenTwitter || g.SocialPosts != 2 {
		t.Fatalf("group bookkeeping wrong: %+v", g)
	}
	// A later tweet marks the group as seen on Twitter too, not as new.
	if s.AddTweet(tweet(9, platform.Discord, "g", SourceSearch)) {
		t.Fatal("tweet on social-discovered group counted as new")
	}
	if g, _ := s.Group(platform.Discord, "g"); !g.SeenTwitter || !g.SeenSocial {
		t.Fatalf("cross-source flags wrong: %+v", g)
	}
}

func TestPostsPersistAcrossSaveLoad(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	s := New()
	s.AddPost(PostRecord{ID: 5, Author: "x", CreatedAt: t0, Platform: platform.Telegram, GroupCode: "tg", Text: "t"})
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Posts()) != 1 || loaded.Posts()[0].Author != "x" {
		t.Fatalf("posts lost on reload: %+v", loaded.Posts())
	}
}
