package msgscope_test

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"msgscope"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/golden from the current output")

// goldenResult runs the seed-42 study once and shares it across the
// golden subtests (a full pipeline run dominates the test's cost).
var goldenResult = sync.OnceValues(func() (*msgscope.Result, error) {
	return msgscope.Run(context.Background(), msgscope.Options{Seed: 42, Scale: 0.01, Days: 10})
})

// TestGoldenRenders pins the Render() output of every figure and of the
// tables rebuilt on the single-pass aggregation (Table 2 from the user
// walk, Tables 4 and 5 from the shared privacy report) against checked-in
// golden files, so any rewiring of the aggregation layer is provably
// output-preserving. Regenerate with `go test -run TestGoldenRenders
// -update .` — a regeneration must be an isolated commit stating why the
// output legitimately changed.
func TestGoldenRenders(t *testing.T) {
	res, err := goldenResult()
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"table2", "table4", "table5",
	}
	for _, id := range ids {
		t.Run(id, func(t *testing.T) {
			got := res.Render(id)
			path := filepath.Join("testdata", "golden", id+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s output diverges from %s:\n--- got ---\n%s\n--- want ---\n%s", id, path, got, want)
			}
		})
	}
}
