// The analytics engine: memoized, concurrency-safe access to every
// experiment output. A Result's dataset is frozen once the study finishes,
// so each table, figure, CSV dump, and SVG chart is computed exactly once
// no matter how many callers — or goroutines — ask for it. Entries are
// single-flight: concurrent requests for the same key block on one
// computation instead of duplicating it.

package msgscope

import (
	"bytes"
	"fmt"
	"strings"
	"sync"

	"msgscope/internal/report"
)

// memoEntry is one cache slot. The sync.Once makes the fill single-flight;
// val is safe to read after once.Do returns.
type memoEntry struct {
	once sync.Once
	val  any
}

// memoCache maps cache keys to their entries. The mutex only guards the
// map itself — computation happens outside it, under the entry's Once, so
// a slow experiment never blocks unrelated keys.
type memoCache struct {
	mu      sync.Mutex
	entries map[string]*memoEntry
}

func (c *memoCache) entry(key string) *memoEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[string]*memoEntry)
	}
	e, ok := c.entries[key]
	if !ok {
		e = &memoEntry{}
		c.entries[key] = e
	}
	return e
}

// cached returns the memoized value for key, computing it on first use.
// Concurrent callers with the same key share one computation.
func cached[T any](r *Result, key string, compute func() T) T {
	e := r.memo.entry(key)
	e.once.Do(func() { e.val = compute() })
	return e.val.(T)
}

// figure returns the named figure's computed result, cached. All figure
// outputs — text rendering, CSV data, SVG chart — derive from this one
// value, so asking for fig6's CSV and then its SVG computes fig6 once.
func (r *Result) figure(id string) report.FigureResult {
	return cached(r, "figure/"+id, func() report.FigureResult {
		f, ok := report.Figure(r.ds, id)
		if !ok {
			panic("msgscope: figure " + id + " not registered") // guarded by callers
		}
		return f
	})
}

func (r *Result) table2() report.Table2Result {
	return cached(r, "exp/table2", func() report.Table2Result { return report.Table2(r.ds) })
}

func (r *Result) table4() report.Table4Result {
	return cached(r, "exp/table4", func() report.Table4Result { return report.Table4(r.ds) })
}

func (r *Result) table5() report.Table5Result {
	return cached(r, "exp/table5", func() report.Table5Result { return report.Table5(r.ds) })
}

// csvResult pairs the serialized bytes with the write error so failures
// are memoized too (retrying cannot change a deterministic serialization).
type csvResult struct {
	data []byte
	err  error
}

// FigureIDs lists the reproduced figures in presentation order.
func FigureIDs() []string { return report.FigureIDs() }

// FigureCSV returns the named figure's plot data as CSV, cached.
func (r *Result) FigureCSV(id string) ([]byte, error) {
	id = strings.ToLower(id)
	if !report.HasFigure(id) {
		return nil, fmt.Errorf("msgscope: unknown figure %q (valid: %s)",
			id, strings.Join(report.FigureIDs(), ", "))
	}
	res := cached(r, "csv/"+id, func() csvResult {
		var buf bytes.Buffer
		err := r.figure(id).WriteCSV(&buf)
		return csvResult{data: buf.Bytes(), err: err}
	})
	return res.data, res.err
}

// FigureSVG returns the named figure rendered as an SVG chart, cached.
func (r *Result) FigureSVG(id string) (string, error) {
	id = strings.ToLower(id)
	if !report.HasFigure(id) {
		return "", fmt.Errorf("msgscope: unknown figure %q (valid: %s)",
			id, strings.Join(report.FigureIDs(), ", "))
	}
	return cached(r, "svg/"+id, func() string { return r.figure(id).SVG() }), nil
}
