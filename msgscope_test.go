package msgscope_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"msgscope"
)

var (
	apiOnce sync.Once
	apiRes  *msgscope.Result
	apiErr  error
)

func apiFixture(t *testing.T) *msgscope.Result {
	t.Helper()
	apiOnce.Do(func() {
		apiRes, apiErr = msgscope.Run(context.Background(), msgscope.Options{
			Seed:  3,
			Scale: 0.004,
			Days:  8,
		})
	})
	if apiErr != nil {
		t.Fatalf("study failed: %v", apiErr)
	}
	return apiRes
}

func TestRenderAllExperiments(t *testing.T) {
	res := apiFixture(t)
	for _, id := range msgscope.Experiments() {
		out := res.Render(id)
		if strings.TrimSpace(out) == "" {
			t.Errorf("experiment %s renders empty", id)
		}
		if strings.Contains(out, "unknown experiment") {
			t.Errorf("experiment %s unknown", id)
		}
	}
	if !strings.Contains(res.Render("nope"), "unknown experiment") {
		t.Error("invalid id not reported")
	}
}

func TestExperimentsListStable(t *testing.T) {
	ids := msgscope.Experiments()
	if len(ids) != 18 {
		t.Fatalf("%d experiments, want 18 (5 tables + 9 figures + 4 extensions)", len(ids))
	}
	for _, want := range []string{"table1", "table5", "fig1", "fig9", "creators", "countries", "toxicity"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func TestTypedAccessors(t *testing.T) {
	res := apiFixture(t)
	if got := msgscope.Platforms(); len(got) != 3 || got[0] != "WhatsApp" {
		t.Fatalf("Platforms() = %v", got)
	}
	for _, p := range msgscope.Platforms() {
		series, err := res.Discovery(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(series) != 8 {
			t.Fatalf("%s: %d discovery points, want 8", p, len(series))
		}
		var totalNew int
		for _, pt := range series {
			totalNew += pt.New
		}
		groups, err := res.Groups(p)
		if err != nil {
			t.Fatal(err)
		}
		if totalNew != len(groups) {
			t.Fatalf("%s: new URLs %d != groups %d", p, totalNew, len(groups))
		}
	}
	if _, err := res.Discovery("MySpace"); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

func TestPIITyped(t *testing.T) {
	res := apiFixture(t)
	pii := res.PII()
	if len(pii) != 3 {
		t.Fatalf("%d PII rows", len(pii))
	}
	if pii[0].Platform != "WhatsApp" || pii[0].PhoneShare < 0.99 {
		t.Fatalf("WhatsApp PII wrong: %+v", pii[0])
	}
	if pii[2].PhonesExposed != 0 {
		t.Fatalf("Discord exposes phones: %+v", pii[2])
	}
}

func TestMessagingTyped(t *testing.T) {
	res := apiFixture(t)
	for _, ms := range res.Messaging() {
		if ms.Messages > 0 {
			if ms.ActiveUsers == 0 {
				t.Fatalf("%s: messages without users", ms.Platform)
			}
			if ms.TypeShares["text"] < 0.5 {
				t.Fatalf("%s: text share %.2f too low", ms.Platform, ms.TypeShares["text"])
			}
		}
	}
}

func TestTopicsTyped(t *testing.T) {
	res := apiFixture(t)
	topics, err := res.Topics("Discord", 4, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(topics) != 4 {
		t.Fatalf("%d topics", len(topics))
	}
	var share float64
	for _, tp := range topics {
		share += tp.Share
		if len(tp.Words) == 0 {
			t.Fatal("topic without words")
		}
	}
	if share < 0.99 || share > 1.01 {
		t.Fatalf("topic shares sum to %v", share)
	}
}

func TestSourceRecall(t *testing.T) {
	res := apiFixture(t)
	search, stream, both := res.SourceRecall()
	if search <= 0 || search > 1 || stream <= 0 || stream > 1 {
		t.Fatalf("recalls out of range: %v %v", search, stream)
	}
	if both > search || both > stream {
		t.Fatalf("overlap %v exceeds a marginal (%v, %v)", both, search, stream)
	}
	// Each single source should miss something the merge caught.
	if search >= 1 && stream >= 1 {
		t.Fatal("no inter-API discrepancy simulated")
	}
}

func TestSaveDataset(t *testing.T) {
	res := apiFixture(t)
	dir := filepath.Join(t.TempDir(), "ds")
	if err := res.SaveDataset(dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"tweets.jsonl", "groups.jsonl", "messages.jsonl", "users.jsonl", "control.jsonl"} {
		st, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
		if f != "control.jsonl" && st.Size() == 0 {
			t.Fatalf("%s is empty", f)
		}
	}
}

func TestSummaryMentionsPipeline(t *testing.T) {
	res := apiFixture(t)
	s := res.Summary()
	for _, want := range []string{"collected:", "sources:", "monitoring:", "joined:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := msgscope.Options{Seed: 5, Scale: 0.002, Days: 5}
	a, err := msgscope.Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := msgscope.Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render("table2") != b.Render("table2") {
		t.Fatalf("same seed, different Table 2:\n%s\nvs\n%s",
			a.Render("table2"), b.Render("table2"))
	}
	if a.Render("fig6") != b.Render("fig6") {
		t.Fatal("same seed, different Figure 6")
	}
}

func TestToxicityExperimentNeedsText(t *testing.T) {
	res := apiFixture(t) // fixture runs without message text
	out := res.Render("toxicity")
	if !strings.Contains(out, "message-text collection") {
		t.Fatalf("text-less run should say so:\n%s", out)
	}
}

func TestToxicityWithTextCollection(t *testing.T) {
	res, err := msgscope.Run(context.Background(), msgscope.Options{
		Seed:                9,
		Scale:               0.004,
		Days:                6,
		GenerateMessageText: true,
		MaxMessagesPerGroup: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render("toxicity")
	if !strings.Contains(out, "scored") {
		t.Fatalf("toxicity did not score:\n%s", out)
	}
	if strings.Contains(out, "message-text collection") {
		t.Fatal("text was collected but experiment claims otherwise")
	}
}

func TestFocusedCollectionFiltersByTitle(t *testing.T) {
	keywords := []string{"bitcoin", "crypto", "forex", "free", "join", "game", "giveaway", "discord"}
	res, err := msgscope.Run(context.Background(), msgscope.Options{
		Seed:          10,
		Scale:         0.03,
		Days:          6,
		TopicKeywords: keywords,
		JoinWhatsApp:  5, JoinTelegram: 5, JoinDiscord: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	joinedAny := false
	for _, p := range msgscope.Platforms() {
		groups, err := res.Groups(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range groups {
			if !g.Joined {
				continue
			}
			joinedAny = true
			match := false
			low := strings.ToLower(g.Title)
			for _, kw := range keywords {
				if strings.Contains(low, kw) {
					match = true
				}
			}
			if !match {
				t.Fatalf("joined group title %q matches no keyword", g.Title)
			}
		}
	}
	if !joinedAny {
		t.Fatal("focused collection joined nothing")
	}
}

func TestCreatorsExperiment(t *testing.T) {
	res := apiFixture(t)
	out := res.Render("creators")
	if !strings.Contains(out, "creators for") {
		t.Fatalf("creators render broken:\n%s", out)
	}
	// WhatsApp and Discord expose creators without joining; both should
	// have data.
	if strings.Count(out, "(no creator data)") > 1 {
		t.Fatalf("too many platforms without creator data:\n%s", out)
	}
}

func TestCountriesExperiment(t *testing.T) {
	res := apiFixture(t)
	out := res.Render("countries")
	if !strings.Contains(out, "BR") {
		t.Fatalf("Brazil missing from creator countries (top of the paper's list):\n%s", out)
	}
}

func TestSaveFigureCSVs(t *testing.T) {
	res := apiFixture(t)
	dir := filepath.Join(t.TempDir(), "csv")
	if err := res.SaveFigureCSVs(dir); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 9; i++ {
		path := filepath.Join(dir, fmt.Sprintf("fig%d.csv", i))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing fig%d.csv: %v", i, err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) < 2 {
			t.Fatalf("fig%d.csv has no data rows", i)
		}
		header := strings.Split(lines[0], ",")
		for _, row := range lines[1:] {
			if got := len(strings.Split(row, ",")); got != len(header) {
				t.Fatalf("fig%d.csv ragged row: %q", i, row)
			}
		}
	}
}

func TestCrossSourceDiscovery(t *testing.T) {
	res, err := msgscope.Run(context.Background(), msgscope.Options{
		Seed:            6,
		Scale:           0.01,
		Days:            8,
		SocialDiscovery: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render("crosssource")
	if strings.Contains(out, "secondary discovery source enabled") {
		t.Fatalf("social discovery did not engage:\n%s", out)
	}
	if !strings.Contains(out, "gain over Twitter-only") {
		t.Fatalf("crosssource render broken:\n%s", out)
	}
	t.Logf("\n%s", out)

	// A Twitter-only run reports the experiment as unavailable.
	off := apiFixture(t)
	if !strings.Contains(off.Render("crosssource"), "secondary discovery source enabled") {
		t.Fatal("twitter-only run should report the source as disabled")
	}
}

func TestSaveFigureSVGs(t *testing.T) {
	res := apiFixture(t)
	dir := filepath.Join(t.TempDir(), "svg")
	if err := res.SaveFigureSVGs(dir); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 9; i++ {
		data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("fig%d.svg", i)))
		if err != nil {
			t.Fatalf("missing fig%d.svg: %v", i, err)
		}
		svg := string(data)
		if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
			t.Fatalf("fig%d.svg malformed", i)
		}
	}
}
