package msgscope_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"msgscope"
)

// killPoint names one step hook firing: a checkpointed boundary ("init",
// "drain", "monitor", "join", "done") or a mid-phase point ("search-NN",
// where no checkpoint is taken and a resume must redo the day).
type killPoint struct {
	day  int
	step string
}

func (k killPoint) String() string { return fmt.Sprintf("day%d-%s", k.day, k.step) }

// killAt returns a step hook that aborts the run at exactly kp, simulating
// a crash there.
func killAt(kp killPoint) func(int, string) error {
	return func(day int, step string) error {
		if day == kp.day && step == kp.step {
			return msgscope.ErrHalted
		}
		return nil
	}
}

// resumeRenderIDs are the order-sensitive experiments compared at every
// kill point (Figures 8/9 walk the message slice in collection order,
// Figure 1/6 and Table 2 aggregate the full dataset). The raw dataset
// bytes are compared too, which subsumes the rest.
var resumeRenderIDs = []string{"table2", "fig1", "fig6", "fig8", "fig9"}

// artifacts is everything compared for byte-identity between a resumed and
// an uninterrupted run.
type artifacts struct {
	renders map[string]string
	summary string
	files   map[string]string // dataset JSONL name -> contents
}

func collectArtifacts(t *testing.T, res *msgscope.Result) artifacts {
	t.Helper()
	dir := t.TempDir()
	if err := res.SaveDataset(dir); err != nil {
		t.Fatal(err)
	}
	a := artifacts{
		renders: map[string]string{},
		summary: res.Summary(),
		files:   map[string]string{},
	}
	for _, id := range resumeRenderIDs {
		a.renders[id] = res.Render(id)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		a.files[e.Name()] = string(data)
	}
	return a
}

func compareArtifacts(t *testing.T, label string, want, got artifacts) {
	t.Helper()
	if got.summary != want.summary {
		t.Errorf("%s: summary diverges:\n--- want ---\n%s\n--- got ---\n%s", label, want.summary, got.summary)
	}
	for id, w := range want.renders {
		if g := got.renders[id]; g != w {
			t.Errorf("%s: %s diverges:\n--- want ---\n%s\n--- got ---\n%s", label, id, w, g)
		}
	}
	if len(got.files) != len(want.files) {
		t.Errorf("%s: dataset file count %d, want %d", label, len(got.files), len(want.files))
	}
	for name, w := range want.files {
		g, ok := got.files[name]
		if !ok {
			t.Errorf("%s: dataset file %s missing", label, name)
			continue
		}
		if g != w {
			t.Errorf("%s: dataset file %s is not byte-identical (%d vs %d bytes)",
				label, name, len(g), len(w))
		}
	}
}

// TestCrashKillResumeMatrix is the checkpoint-resume correctness proof: a
// seed-42 study is killed at every checkpoint boundary and at every
// mid-phase search point, resumed from disk, and required to end with
// byte-identical output — every dataset JSONL file, the order-sensitive
// figures and tables, the pipeline summary — versus the uninterrupted run.
// The matrix runs at worker counts 1 (serial) and 4 (parallel fan-outs),
// because a resume replays serially what the original run may have
// collected in parallel.
func TestCrashKillResumeMatrix(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			opts := msgscope.Options{
				Seed: 42, Scale: 0.01, Days: 3,
				// Every 6 hours keeps the mid-phase kill set dense (4 per
				// day) without making the matrix quadratic in run length.
				SearchEveryHours: 6,
				SearchWorkers:    workers,
				CollectWorkers:   workers,
			}

			// Uninterrupted checkpointed baseline; the hook records every
			// kill point the matrix will replay.
			var points []killPoint
			bopts := opts
			bopts.CheckpointDir = t.TempDir()
			baseline, err := msgscope.RunWithHook(ctx, bopts, func(day int, step string) error {
				points = append(points, killPoint{day, step})
				return nil
			})
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}
			base := collectArtifacts(t, baseline)

			// Checkpointing must not perturb the run it checkpoints.
			plain, err := msgscope.Run(ctx, opts)
			if err != nil {
				t.Fatalf("plain run: %v", err)
			}
			compareArtifacts(t, "checkpointed-vs-plain", base, collectArtifacts(t, plain))

			// The recorded points must cover every boundary kind.
			seen := map[string]bool{}
			for _, kp := range points {
				seen[kp.step] = true
			}
			for _, step := range []string{"init", "search-06", "drain", "monitor", "join", "done"} {
				if !seen[step] {
					t.Fatalf("recorded kill points miss step %q (got %v)", step, points)
				}
			}

			for _, kp := range points {
				t.Run(kp.String(), func(t *testing.T) {
					dir := t.TempDir()
					kopts := opts
					kopts.CheckpointDir = dir
					if _, err := msgscope.RunWithHook(ctx, kopts, killAt(kp)); !errors.Is(err, msgscope.ErrHalted) {
						t.Fatalf("killed run at %s: err = %v, want ErrHalted", kp, err)
					}
					res, err := msgscope.Resume(ctx, dir)
					if err != nil {
						t.Fatalf("resuming from kill at %s: %v", kp, err)
					}
					compareArtifacts(t, "resumed-vs-uninterrupted", base, collectArtifacts(t, res))
				})
			}
		})
	}
}

// TestResumeProducesIdenticalFigureFiles kills one run mid-phase, resumes
// it, and byte-compares the rendered figure CSV and SVG files — the
// on-disk artifacts `msgscope run -csv/-svg` ships — against the
// uninterrupted run's.
func TestResumeProducesIdenticalFigureFiles(t *testing.T) {
	ctx := context.Background()
	opts := msgscope.Options{Seed: 42, Scale: 0.01, Days: 3, SearchEveryHours: 6}

	full, err := msgscope.Run(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	kopts := opts
	kopts.CheckpointDir = dir
	if _, err := msgscope.RunWithHook(ctx, kopts, killAt(killPoint{1, "search-12"})); !errors.Is(err, msgscope.ErrHalted) {
		t.Fatalf("killed run: err = %v, want ErrHalted", err)
	}
	resumed, err := msgscope.Resume(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}

	for kind, save := range map[string]func(*msgscope.Result, string) error{
		"csv": (*msgscope.Result).SaveFigureCSVs,
		"svg": (*msgscope.Result).SaveFigureSVGs,
	} {
		wantDir, gotDir := t.TempDir(), t.TempDir()
		if err := save(full, wantDir); err != nil {
			t.Fatal(err)
		}
		if err := save(resumed, gotDir); err != nil {
			t.Fatal(err)
		}
		entries, err := os.ReadDir(wantDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			want, err := os.ReadFile(filepath.Join(wantDir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(filepath.Join(gotDir, e.Name()))
			if err != nil {
				t.Fatalf("resumed run did not produce %s %s: %v", kind, e.Name(), err)
			}
			if string(got) != string(want) {
				t.Errorf("%s %s is not byte-identical after resume", kind, e.Name())
			}
		}
	}
}

// TestGoldenResumeMatchesGoldenFiles kills the golden-configuration study
// (the one testdata/golden pins) at a mid-run boundary, resumes it, and
// checks the resumed renders against the checked-in golden files — the
// resume path must land on the exact bytes the uninterrupted pipeline is
// pinned to.
func TestGoldenResumeMatchesGoldenFiles(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	opts := msgscope.Options{Seed: 42, Scale: 0.01, Days: 10, CheckpointDir: dir}
	if _, err := msgscope.RunWithHook(ctx, opts, killAt(killPoint{5, "monitor"})); !errors.Is(err, msgscope.ErrHalted) {
		t.Fatalf("killed run: err = %v, want ErrHalted", err)
	}
	res, err := msgscope.Resume(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"table2", "table4", "table5",
	}
	for _, id := range ids {
		want, err := os.ReadFile(filepath.Join("testdata", "golden", id+".txt"))
		if err != nil {
			t.Fatalf("missing golden file: %v", err)
		}
		if got := res.Render(id); got != string(want) {
			t.Errorf("resumed %s diverges from the golden file:\n--- got ---\n%s\n--- want ---\n%s", id, got, want)
		}
	}
}

// TestResumeSmoke is the cheap CI gate (`make resume-smoke`): one kill at
// a day boundary, one mid-phase, resumed and compared against the
// uninterrupted dataset.
func TestResumeSmoke(t *testing.T) {
	ctx := context.Background()
	opts := msgscope.Options{Seed: 42, Scale: 0.01, Days: 3, SearchEveryHours: 6}
	full, err := msgscope.Run(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	base := collectArtifacts(t, full)
	for _, kp := range []killPoint{{0, "drain"}, {2, "search-18"}} {
		dir := t.TempDir()
		kopts := opts
		kopts.CheckpointDir = dir
		if _, err := msgscope.RunWithHook(ctx, kopts, killAt(kp)); !errors.Is(err, msgscope.ErrHalted) {
			t.Fatalf("killed run at %s: err = %v, want ErrHalted", kp, err)
		}
		res, err := msgscope.Resume(ctx, dir)
		if err != nil {
			t.Fatalf("resuming from kill at %s: %v", kp, err)
		}
		compareArtifacts(t, "resumed-vs-uninterrupted "+kp.String(), base, collectArtifacts(t, res))
	}
}
