GO ?= go

.PHONY: all build test vet race bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark (correctness + headline numbers, not
# stable timings; use `go test -bench=. -benchmem .` for real measurement).
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./...

ci: vet build race bench
