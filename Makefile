GO ?= go

.PHONY: all build test vet race bench bench-json bench-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark (correctness + headline numbers, not
# stable timings; use `go test -bench=. -benchmem .` for real measurement).
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./...

# Pipeline benchmarks (full study, hourly search, daily sweep; serial vs
# parallel) rendered to BENCH_2.json, including the derived speedups and
# the machine's core count.
bench-json:
	$(GO) test -run='^$$' -bench='StudyRun|HourlySearch|DailySweep' -benchmem ./internal/core \
		| $(GO) run ./cmd/benchjson -o BENCH_2.json
	@cat BENCH_2.json

# One iteration of the end-to-end study benchmark: cheap proof in CI that
# the pipeline still runs under the benchmark harness.
bench-smoke:
	$(GO) test -run='^$$' -bench='StudyRun' -benchtime=1x ./internal/core

ci: vet build race bench-smoke bench
