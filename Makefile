GO ?= go

.PHONY: all build test vet race bench bench-json bench-compare bench-smoke bench-scale bench-lda profile fuzz-smoke resume-smoke cover ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark (correctness + headline numbers, not
# stable timings; use `go test -bench=. -benchmem .` for real measurement).
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem ./...

# Pipeline + analysis + store benchmarks (full study, hourly search, daily
# sweep, LDA fit + K×vocab kernel sweep, cold figure aggregation, columnar
# ingest; serial vs parallel where both exist, plus the checkpointed study
# variant whose delta over plain parallel is the cost of
# crash-resumability) rendered to BENCH_10.json, including the derived
# speedups, custom metrics (ns/rec, liveB/rec, tok/s, and the spill
# benchmark's peakRSS-MB / heapLive-MB / segDisk-MB) and the machine's
# core count. benchjson's -cpus mode runs the suite under each GOMAXPROCS
# in BENCH_CPUS, so the document carries a per-CPU-count matrix — the
# measurements behind the SearchWorkers/CollectWorkers defaults and the
# LDA chunk-merge speedup (BenchmarkLDAFit/parallel per CPU count),
# measured rather than assumed.
BENCH_PATTERN = StudyRun|HourlySearch|DailySweep|LDAFit|LDASweep|RenderAll|StoreIngest
BENCH_PKGS = ./internal/core ./internal/analysis/lda ./internal/store
BENCH_CPUS = 1,2

bench-json:
	$(GO) run ./cmd/benchjson -cpus '$(BENCH_CPUS)' -bench '$(BENCH_PATTERN)' \
		-count 3 -o BENCH_10.json $(BENCH_PKGS)
	@cat BENCH_10.json

# Allocation-regression gate: rerun the pipeline benchmarks and diff them
# against the newest checked-in BENCH_*.json, failing on >20% growth in
# ns/op, allocs/op or a custom metric (ns/rec, liveB/rec). Allocation
# counts and live bytes are deterministic; ns/op on a loaded machine is
# not, hence the tolerance.
bench-compare:
	$(GO) test -run='^$$' -bench='$(BENCH_PATTERN)' -benchmem $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson -compare .

# Capture CPU + allocation profiles and an execution trace of one scaled
# study run. Read them with `go tool pprof cpu.pprof` (top, list <func>,
# web) and `go tool trace trace.out`; DESIGN.md §10 documents the workflow.
profile:
	$(GO) run ./cmd/msgscope run -summary \
		-cpuprofile cpu.pprof -memprofile mem.pprof -trace trace.out
	@echo wrote cpu.pprof mem.pprof trace.out

# One iteration of the end-to-end study benchmark: cheap proof in CI that
# the pipeline still runs under the benchmark harness.
bench-smoke:
	$(GO) test -run='^$$' -bench='StudyRun' -benchtime=1x ./internal/core

# Paper-scale ingest smoke: one iteration of the store benchmarks at 10x
# scale (1M tweets, 2M messages, 500K users through the columnar store).
# The short timeout is the gate — it fails if ingest cost stops being
# O(record) (e.g. a reallocation bug turns appends quadratic), not on
# timing noise. The second pass is observation-heavy: 5x groups (100K)
# probed over a doubled 76-sweep horizon (~6M observations through the
# per-stripe append-only column sets), the shape a TeleScope-style
# longitudinal study would put on the group family.
bench-scale:
	MSGSCOPE_BENCH_SCALE=10 $(GO) test -run='^$$' -bench='StoreIngest' \
		-benchtime=1x -benchmem -timeout=300s ./internal/store
	MSGSCOPE_BENCH_SCALE=5 MSGSCOPE_BENCH_SWEEPS=76 $(GO) test -run='^$$' \
		-bench='StoreIngest/groups' -benchtime=1x -benchmem -timeout=300s \
		./internal/store
	# Memory-budget gate: the same 10x corpus (1M tweets, 2M messages)
	# ingested under a 32 MiB spill budget with the Go heap pinned by
	# GOMEMLIMIT. An unbudgeted store holds ~200 MB of rows live at this
	# scale; the budgeted pass must finish under a 384 MiB peak-RSS
	# ceiling (segments on disk, live heap near zero) or the benchmark
	# itself fails via MSGSCOPE_BENCH_RSS_MAX.
	GOMEMLIMIT=256MiB MSGSCOPE_BENCH_SCALE=10 MSGSCOPE_SPILL_BUDGET=33554432 \
		MSGSCOPE_BENCH_RSS_MAX=402653184 $(GO) test -run='^$$' \
		-bench='StoreIngestSpill' -benchtime=1x -benchmem -timeout=300s \
		./internal/store

# Short fuzz bursts over the parsing surfaces the fault injector attacks
# (URL extraction and the WhatsApp landing-page scraper) plus the sparse
# LDA bucket sampler's invariants under arbitrary count shapes. 10s per
# target: long enough to shake out regressions against the checked-in
# corpus, short enough for every CI run.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=10s ./internal/urlpat
	$(GO) test -run='^$$' -fuzz='^FuzzExtract$$' -fuzztime=10s ./internal/urlpat
	$(GO) test -run='^$$' -fuzz='^FuzzScrapeLanding$$' -fuzztime=10s ./internal/platform/whatsapp
	$(GO) test -run='^$$' -fuzz='^FuzzSparseBucket$$' -fuzztime=10s ./internal/analysis/lda
	$(GO) test -run='^$$' -fuzz='^FuzzAliasTable$$' -fuzztime=10s ./internal/analysis/lda
	$(GO) test -run='^$$' -fuzz='^FuzzManifestDecode$$' -fuzztime=10s ./internal/checkpoint

# Topic-kernel smoke: fit all three Gibbs kernels (dense, sparse, alias)
# on a tiny corpus and assert converged perplexity parity, then one pass
# of the LDA benchmarks under the harness. Cheap proof in CI that a
# sampler change cannot silently diverge the chains' topic quality.
bench-lda:
	$(GO) test -count=1 -run='^TestLDASamplerParitySmoke$$' ./internal/analysis/lda
	$(GO) test -run='^$$' -bench='LDAFit|LDASweep' -benchtime=1x ./internal/analysis/lda

# Checkpoint-resume gate: kill a checkpointed study at a day boundary and
# mid-phase, resume each from disk, and require byte-identical dataset and
# report output versus the uninterrupted run. The full kill matrix (every
# boundary, both worker widths, under fault plans) runs with `make test`
# as TestCrashKillResumeMatrix / TestChaosKillResumeByteIdentity.
resume-smoke:
	$(GO) test -count=1 -run='^TestResumeSmoke$$' .

# Coverage floor for the fault/retry layer: the rest of the repo is covered
# by end-to-end pipeline tests, but these two packages are the safety net
# everything else leans on, so their own tests must exercise them directly.
cover:
	$(GO) test -count=1 -coverprofile=cover.out ./internal/retry ./internal/faults
	@$(GO) tool cover -func=cover.out | tail -1
	@$(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); if ($$3+0 < 70) { printf "coverage %.1f%% below the 70%% floor for internal/retry + internal/faults\n", $$3; exit 1 } }'

ci: vet build race cover fuzz-smoke resume-smoke bench-smoke bench-scale bench-lda bench bench-compare
